package feature

import (
	"math"

	"schemaflow/internal/strsim"
)

// matchIndex answers "which vocabulary terms match this term at τ_t_sim?".
//
// The naive answer compares the term against every vocabulary entry, which
// makes feature construction O(dim L · total terms) similarity calls. For
// the default LCS similarity a sound prefilter exists: t_sim(a,b) ≥ τ
// requires a common substring of length ≥ ⌈τ·(len(a)+len(b))/2⌉, so with a
// minimum term length of L_min any matching pair shares a substring of
// length g = min(3, ⌈τ·L_min⌉). Indexing vocabulary terms by their g-grams
// turns matching into candidate lookup plus verification. Stem and exact
// similarities get their own exact-bucket indexes; any other similarity
// function falls back to a full scan.
type matchIndex struct {
	vocab  []string
	sim    strsim.TermSim
	tau    float64
	minLen int

	// vocabMatches[j] caches the match list of vocabulary term j.
	vocabMatches [][]int32

	strategy matchStrategy
}

type matchStrategy interface {
	// candidates returns vocabulary indices that may match term; it must be
	// a superset of the true matches.
	candidates(term string) []int32
}

func newMatchIndex(vocab []string, sim strsim.TermSim, tau float64, minLen int) *matchIndex {
	m := &matchIndex{
		vocab:        vocab,
		sim:          sim,
		tau:          tau,
		minLen:       minLen,
		vocabMatches: make([][]int32, len(vocab)),
	}
	m.strategy = m.newStrategy(vocab)
	return m
}

// newStrategy builds the candidate index appropriate for the similarity
// function over the given term list.
func (m *matchIndex) newStrategy(vocab []string) matchStrategy {
	if m.tau <= 0 {
		// At τ = 0 every pair of terms matches (similarities live in [0,1]),
		// so any bucketed prefilter would be unsound — only a full scan
		// returns the required superset.
		return fullScan{n: len(vocab)}
	}
	switch m.sim.(type) {
	case strsim.LCSSim:
		return newGramStrategy(vocab, m.tau, m.minLen)
	case strsim.StemSim:
		return newStemStrategy(vocab)
	case strsim.ExactSim:
		return newExactStrategy(vocab)
	default:
		return fullScan{n: len(vocab)}
	}
}

// symmetricSim reports whether the similarity function is known to satisfy
// sim(a,b) == sim(b,a), letting extension verify each candidate pair once.
// Unknown (user-supplied) similarities are conservatively treated as
// asymmetric and verified in both directions.
func symmetricSim(s strsim.TermSim) bool {
	switch s.(type) {
	case strsim.LCSSim, strsim.StemSim, strsim.ExactSim, strsim.LCSeqSim:
		return true
	}
	return false
}

// extended returns a new matchIndex over newVocab = m.vocab ++ newTerms
// (the appended terms occupy indices len(m.vocab)...), without rebuilding
// the base candidate index: the new terms are probed against the existing
// index for cross-matches and layered on top of it (overlayStrategy). The
// receiver is never mutated; shared structures are copied on write.
//
// The second return value rev holds, per new term, the OLD vocabulary
// indices j with sim(vocab[j], newTerm) ≥ τ — i.e. the old-vocab match list
// of each new term, which is exactly the set of columns whose owning
// schemas gain the new bit (F_i[j_new] = 1 iff T_i intersects rev).
func (m *matchIndex) extended(newVocab []string, newTerms []string) (*matchIndex, [][]int32) {
	oldDim := len(m.vocab)
	nm := &matchIndex{
		vocab:        newVocab,
		sim:          m.sim,
		tau:          m.tau,
		minLen:       m.minLen,
		vocabMatches: make([][]int32, len(newVocab)),
	}
	copy(nm.vocabMatches, m.vocabMatches)
	// BuildLite materializes every vocabulary term's match list, but be
	// defensive: the extended index must be fully populated so concurrent
	// readers never race on a lazy fill.
	for j := 0; j < oldDim; j++ {
		if nm.vocabMatches[j] == nil {
			nm.vocabMatches[j] = m.matchesOfVocab(j)
		}
	}

	sym := symmetricSim(m.sim)
	fwd := make([][]int32, len(newTerms)) // sim(newTerm, vocab[j]) ≥ τ
	rev := make([][]int32, len(newTerms)) // sim(vocab[j], newTerm) ≥ τ
	for i, u := range newTerms {
		for _, j := range m.strategy.candidates(u) {
			v := m.vocab[j]
			f := m.sim.Sim(u, v) >= m.tau
			r := f
			if !sym {
				r = m.sim.Sim(v, u) >= m.tau
			}
			if f {
				fwd[i] = append(fwd[i], j)
			}
			if r {
				rev[i] = append(rev[i], j)
			}
		}
	}

	// Match lists of the appended terms: the forward cross-matches, the
	// term itself, and any matching fellow newcomers (new terms arrive one
	// schema at a time, so this pair scan is tiny). Match lists follow the
	// owner-first convention of matchesOf — w belongs in u's list iff
	// sim(u, w) ≥ τ — so the scan must honor the same symmetry contract as
	// the cross-match loop above: each unordered newcomer pair is verified
	// once for a known-symmetric similarity and in both ordered directions
	// for an unknown (possibly asymmetric) one.
	n := len(newTerms)
	pair := make([]bool, n*n) // pair[i*n+k]: newTerms[k] is in newTerms[i]'s list
	for i := 0; i < n; i++ {
		pair[i*n+i] = true // a term always matches itself
		for k := i + 1; k < n; k++ {
			f := m.sim.Sim(newTerms[i], newTerms[k]) >= m.tau
			r := f
			if !sym {
				r = m.sim.Sim(newTerms[k], newTerms[i]) >= m.tau
			}
			pair[i*n+k] = f
			pair[k*n+i] = r
		}
	}
	for i := range newTerms {
		list := make([]int32, 0, len(fwd[i])+1)
		list = append(list, fwd[i]...)
		for k := 0; k < n; k++ {
			if pair[i*n+k] {
				list = append(list, int32(oldDim+k))
			}
		}
		nm.vocabMatches[oldDim+i] = list
	}

	// Copy-on-write append of new indices onto affected old match lists.
	adds := make(map[int32][]int32)
	for i, js := range rev {
		for _, j := range js {
			adds[j] = append(adds[j], int32(oldDim+i))
		}
	}
	for j, extra := range adds {
		old := nm.vocabMatches[j]
		list := make([]int32, 0, len(old)+len(extra))
		list = append(list, old...)
		list = append(list, extra...)
		nm.vocabMatches[j] = list
	}

	nm.strategy = m.extendStrategy(newTerms)
	return nm, rev
}

// extendStrategy layers the appended terms onto the base candidate index.
func (m *matchIndex) extendStrategy(newTerms []string) matchStrategy {
	if len(newTerms) == 0 {
		return m.strategy
	}
	switch s := m.strategy.(type) {
	case fullScan:
		return fullScan{n: s.n + len(newTerms)}
	case *overlayStrategy:
		// Extension of an extension: keep the original base, grow the
		// (small) overlay. The overlay index is rebuilt from the
		// accumulated extra terms — O(extras since the last full build).
		terms := make([]string, 0, len(s.extraTerms)+len(newTerms))
		terms = append(terms, s.extraTerms...)
		terms = append(terms, newTerms...)
		return &overlayStrategy{
			base:       s.base,
			baseDim:    s.baseDim,
			extraTerms: terms,
			extra:      m.newStrategy(terms),
		}
	default:
		terms := append([]string(nil), newTerms...)
		return &overlayStrategy{
			base:       s,
			baseDim:    len(m.vocab),
			extraTerms: terms,
			extra:      m.newStrategy(terms),
		}
	}
}

// overlayStrategy answers candidate queries over a vocabulary that grew
// after its base index was built: the immutable base index covers indices
// [0, baseDim) and a small secondary index covers the appended terms at
// [baseDim, baseDim+len(extraTerms)). Incremental space extension layers at
// most one overlay — extending again grows extraTerms rather than nesting —
// so lookups stay two probes regardless of how many schemas arrived since
// the last full build.
type overlayStrategy struct {
	base       matchStrategy
	baseDim    int
	extraTerms []string
	extra      matchStrategy
}

func (s *overlayStrategy) candidates(term string) []int32 {
	bc := s.base.candidates(term)
	ec := s.extra.candidates(term)
	if len(ec) == 0 {
		return bc
	}
	out := make([]int32, 0, len(bc)+len(ec))
	out = append(out, bc...)
	for _, j := range ec {
		out = append(out, int32(s.baseDim)+j)
	}
	return out
}

// matchesOf returns the vocabulary indices whose terms match the given term
// at τ. The term need not be in the vocabulary.
func (m *matchIndex) matchesOf(term string) []int32 {
	cands := m.strategy.candidates(term)
	out := make([]int32, 0, 4)
	for _, j := range cands {
		v := m.vocab[j]
		if term == v || m.sim.Sim(term, v) >= m.tau {
			out = append(out, j)
		}
	}
	return out
}

// matchesOfVocab is matchesOf for a term already in the vocabulary,
// memoized per vocabulary index.
func (m *matchIndex) matchesOfVocab(j int) []int32 {
	if got := m.vocabMatches[j]; got != nil {
		return got
	}
	matches := m.matchesOf(m.vocab[j])
	if matches == nil {
		matches = []int32{}
	}
	m.vocabMatches[j] = matches
	return matches
}

// gramStrategy indexes vocabulary terms by character g-grams.
type gramStrategy struct {
	gram  int
	index map[string][]int32
	all   []int32 // used when the prefilter is unsound for a given term
}

func newGramStrategy(vocab []string, tau float64, minLen int) *gramStrategy {
	if minLen <= 0 {
		// A literal MinLength of 0 (terms.Options' negative escape hatch)
		// admits single-letter terms, so the soundness argument below must
		// assume length ≥ 1 — clamping to the default 3 here would pick a
		// gram width that misses short-term matches.
		minLen = 1
	}
	// Any pair of terms of length >= minLen matching at tau shares a common
	// substring of length >= ceil(tau*minLen), since (len(a)+len(b))/2 >=
	// minLen. Using that (capped at 3) as the gram size keeps the filter
	// sound while pruning hard.
	need := int(math.Ceil(tau * float64(minLen)))
	g := need
	if g > 3 {
		g = 3
	}
	if g < 1 {
		g = 1
	}
	s := &gramStrategy{gram: g, index: make(map[string][]int32)}
	for j, t := range vocab {
		for _, gr := range gramsOf(t, g) {
			s.index[gr] = append(s.index[gr], int32(j))
		}
		s.all = append(s.all, int32(j))
	}
	return s
}

// gramsOf returns the distinct byte windows of width g in t. Byte windows
// remain a sound prefilter even for terms containing multi-byte runes: a
// pair matching at τ under the (rune-measured) LCS similarity shares a
// common rune substring of ≥ ⌈τ·minLen⌉ runes, whose UTF-8 encoding is an
// identical byte substring of at least that many bytes in both terms — so
// both contain all of its byte g-windows. Mid-rune windows merely enlarge
// the candidate superset; verification runs the real similarity.
func gramsOf(t string, g int) []string {
	if len(t) < g {
		return []string{t}
	}
	out := make([]string, 0, len(t)-g+1)
	seen := make(map[string]bool, len(t))
	for i := 0; i+g <= len(t); i++ {
		gr := t[i : i+g]
		if !seen[gr] {
			seen[gr] = true
			out = append(out, gr)
		}
	}
	return out
}

func (s *gramStrategy) candidates(term string) []int32 {
	if len(term) < s.gram {
		// Shorter than a gram: the prefilter argument does not apply, and
		// such terms are filtered out upstream anyway; scan everything.
		return s.all
	}
	var out []int32
	seen := make(map[int32]bool)
	for _, gr := range gramsOf(term, s.gram) {
		for _, j := range s.index[gr] {
			if !seen[j] {
				seen[j] = true
				out = append(out, j)
			}
		}
	}
	return out
}

// stemStrategy buckets vocabulary terms by Porter stem.
type stemStrategy struct {
	byStem map[string][]int32
}

func newStemStrategy(vocab []string) *stemStrategy {
	s := &stemStrategy{byStem: make(map[string][]int32, len(vocab))}
	for j, t := range vocab {
		st := strsim.Stem(t)
		s.byStem[st] = append(s.byStem[st], int32(j))
	}
	return s
}

func (s *stemStrategy) candidates(term string) []int32 {
	return s.byStem[strsim.Stem(term)]
}

// exactStrategy is a plain map lookup.
type exactStrategy struct {
	byTerm map[string]int32
}

func newExactStrategy(vocab []string) *exactStrategy {
	s := &exactStrategy{byTerm: make(map[string]int32, len(vocab))}
	for j, t := range vocab {
		s.byTerm[t] = int32(j)
	}
	return s
}

func (s *exactStrategy) candidates(term string) []int32 {
	if j, ok := s.byTerm[term]; ok {
		return []int32{j}
	}
	return nil
}

// fullScan compares against every vocabulary term.
type fullScan struct{ n int }

func (f fullScan) candidates(string) []int32 {
	out := make([]int32, f.n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}
