package feature

import "schemaflow/internal/obs"

// mExtendFallback counts incremental feature-space extensions that could
// not take the incremental route and fell back to a full BuildLite rebuild
// (TermFrequency mode: per-occurrence counts cannot be patched in place).
// A nonzero rate on a serving system means every "incremental" ingest is
// silently paying rebuild cost — switch the space to Binary mode or expect
// assignment latency to scale with corpus size.
var mExtendFallback = obs.Default().Counter(
	"schemaflow_ingest_extend_fallback_total",
	"Incremental feature-space extensions that fell back to a full rebuild (TermFrequency mode cannot be patched in place).")
