// Benchmark harness: one benchmark per table and figure of the thesis'
// evaluation (Chapter 6), plus the DESIGN.md ablations. Each benchmark runs
// the corresponding experiment end to end and reports its headline numbers
// via b.ReportMetric, so `go test -bench=. -benchmem` regenerates the same
// rows/series the thesis reports (see EXPERIMENTS.md for the paper-vs-
// measured comparison).
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Regenerate one artifact, e.g. Figure 6.7:
//
//	go test -bench=BenchmarkFigure67 -v
package schemaflow_test

import (
	"sync"
	"testing"

	"schemaflow/internal/classify"
	"schemaflow/internal/cluster"
	"schemaflow/internal/experiments"
)

// corpora are generated once and shared across benchmarks; generation is
// deterministic so this does not couple results.
var (
	corporaOnce sync.Once
	corpora     experiments.Corpora
)

func loadCorpora() experiments.Corpora {
	corporaOnce.Do(func() {
		corpora = experiments.LoadCorpora(experiments.DefaultSeed)
	})
	return corpora
}

// BenchmarkTable61 regenerates Table 6.1 (statistics about schema sets).
func BenchmarkTable61(b *testing.B) {
	c := loadCorpora()
	var rows []experiments.Table61Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table61(c)
	}
	b.ReportMetric(float64(rows[0].Stats.NumSchemas), "dw-schemas")
	b.ReportMetric(float64(rows[1].Stats.NumSchemas), "ss-schemas")
	b.ReportMetric(rows[2].Stats.AvgTermsPerSch, "both-avg-terms")
	b.Logf("\n%s", experiments.RenderTable61(rows))
}

// sweepOnce runs the Figures 6.2–6.6 linkage sweep once (shared by the five
// figure benchmarks; each figure projects a different metric).
func sweepOnce(b *testing.B) []experiments.SweepSeries {
	b.Helper()
	series, err := experiments.LinkageSweep(loadCorpora().Both,
		experiments.DefaultTaus(), cluster.Methods(), experiments.DefaultTheta)
	if err != nil {
		b.Fatal(err)
	}
	return series
}

// benchFigure runs the sweep per iteration and reports the Avg-Jaccard curve
// endpoints of the figure's metric.
func benchFigure(b *testing.B, fm experiments.FigureMetric) {
	var series []experiments.SweepSeries
	for i := 0; i < b.N; i++ {
		series = sweepOnce(b)
	}
	for _, s := range series {
		if s.Method == cluster.AvgJaccard {
			b.ReportMetric(fm.Value(s.Points[1].Metrics), "avg-jaccard@tau0.2")
			b.ReportMetric(fm.Value(s.Points[2].Metrics), "avg-jaccard@tau0.3")
		}
	}
	b.Logf("\n%s", experiments.RenderFigure(series, fm))
}

// BenchmarkFigure62 regenerates Figure 6.2 (average precision vs τ_c_sim).
func BenchmarkFigure62(b *testing.B) { benchFigure(b, experiments.MetricPrecision) }

// BenchmarkFigure63 regenerates Figure 6.3 (average recall vs τ_c_sim).
func BenchmarkFigure63(b *testing.B) { benchFigure(b, experiments.MetricRecall) }

// BenchmarkFigure64 regenerates Figure 6.4 (average fragmentation).
func BenchmarkFigure64(b *testing.B) { benchFigure(b, experiments.MetricFragmentation) }

// BenchmarkFigure65 regenerates Figure 6.5 (fraction of schemas in
// non-homogeneous domains).
func BenchmarkFigure65(b *testing.B) { benchFigure(b, experiments.MetricNonHomogeneous) }

// BenchmarkFigure66 regenerates Figure 6.6 (fraction of unclustered schemas).
func BenchmarkFigure66(b *testing.B) { benchFigure(b, experiments.MetricUnclustered) }

// BenchmarkTable62 regenerates Table 6.2 (clustering evaluation at
// τ ∈ {0.2, 0.3} on DW, SS and their union).
func BenchmarkTable62(b *testing.B) {
	c := loadCorpora()
	var cells []experiments.Table62Cell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = experiments.Table62(c)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, cell := range cells {
		if cell.Corpus == "Both" && cell.Tau == 0.2 {
			b.ReportMetric(cell.Metrics.Precision, "both@0.2-precision")
			b.ReportMetric(cell.Metrics.Recall, "both@0.2-recall")
		}
	}
	b.Logf("\n%s", experiments.RenderTable62(cells))
}

// BenchmarkDDHClustering regenerates the Section 6.2 DDH paragraph:
// precision and recall above 0.99 for τ ≥ 0.2 on the well-separated corpus,
// with Max Jaccard's recall collapsing below τ = 0.5.
func BenchmarkDDHClustering(b *testing.B) {
	c := loadCorpora()
	var results []experiments.DDHResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = experiments.DDHClustering(c.DDH, []float64{0.2, 0.5}, cluster.Methods())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range results {
		if r.Method == cluster.AvgJaccard && r.Tau == 0.2 {
			b.ReportMetric(r.Metrics.Precision, "avg@0.2-precision")
			b.ReportMetric(r.Metrics.Recall, "avg@0.2-recall")
		}
		if r.Method == cluster.MaxJaccard && r.Tau == 0.2 {
			b.ReportMetric(r.Metrics.Recall, "max@0.2-recall")
		}
	}
	b.Logf("\n%s", experiments.RenderDDH(results))
}

// BenchmarkMediationCoherence regenerates the Section 6.3 homonym
// experiment ('family name' in people vs biology).
func BenchmarkMediationCoherence(b *testing.B) {
	var res *experiments.CoherenceResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.MediationCoherence()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(boolMetric(res.FusedWithoutClustering), "fused-without-clustering")
	b.ReportMetric(boolMetric(res.SeparatedWithClustering), "separated-with-clustering")
	b.Logf("\n%s", res.Render())
}

// BenchmarkMediationThreshold regenerates the Section 6.3 frequency-
// threshold experiment (mediating all of DDH as one domain at thresholds
// 0.1 / 0.01 / 0, vs per-domain mediation after clustering).
func BenchmarkMediationThreshold(b *testing.B) {
	c := loadCorpora()
	var rows []experiments.ThresholdRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.MediationThreshold(c.DDH, []float64{0.1, 0.01, 0})
		if err != nil {
			b.Fatal(err)
		}
	}
	clustered, attrs, err := experiments.ClusteredMediationTime(c.DDH)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(rows[0].AbsentDomains), "absent-domains@0.1")
	b.ReportMetric(float64(rows[2].MediatedAttrs), "mediated-attrs@0")
	b.Logf("\n%s", experiments.RenderThreshold(rows, clustered, attrs))
}

// BenchmarkFigure67 regenerates Figure 6.7 (top-1/top-3 query classification
// quality vs query size on DW∪SS).
func BenchmarkFigure67(b *testing.B) {
	c := loadCorpora()
	var res *experiments.ClassificationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.QueryClassification("DW∪SS", c.Both, experiments.ClassOptions{
			Seed: experiments.DefaultSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Points[0].Top1, "top1@size1")
	b.ReportMetric(res.Points[len(res.Points)-1].Top1, "top1@size10")
	b.Logf("\n%s", res.Render())
}

// BenchmarkDDHQueries regenerates the Section 6.4 DDH paragraph (top-1 ≈ 1
// for every query size, slightly lower for single-keyword queries).
func BenchmarkDDHQueries(b *testing.B) {
	c := loadCorpora()
	var res *experiments.ClassificationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.QueryClassification("DDH", c.DDH, experiments.ClassOptions{
			MinFrac: experiments.DDHQueryFrac,
			Seed:    experiments.DefaultSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Points[0].Top1, "top1@size1")
	b.ReportMetric(res.Points[4].Top1, "top1@size5")
	b.Logf("\n%s", res.Render())
}

// BenchmarkClassifierSetupBoth measures exact-classifier construction on
// DW∪SS (the Section 6.4 "less than a minute" measurement).
func BenchmarkClassifierSetupBoth(b *testing.B) {
	benchClassifierSetup(b, false)
}

// BenchmarkClassifierSetupDDH measures exact-classifier construction on DDH
// (the Section 6.4 "about 5 minutes" measurement; the synthetic stand-in is
// far smaller in vocabulary, so absolute time differs, but DDH remains the
// costlier of the two).
func BenchmarkClassifierSetupDDH(b *testing.B) {
	benchClassifierSetup(b, true)
}

func benchClassifierSetup(b *testing.B, ddh bool) {
	c := loadCorpora()
	set := c.Both
	if ddh {
		set = c.DDH
	}
	cmp, err := experiments.CompareClassifierSetup("bench", set, 0.25,
		experiments.DefaultTheta, chooseFrac(ddh), experiments.DefaultSeed)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(cmp.ExactTime.Microseconds()), "exact-setup-us")
	b.ReportMetric(float64(cmp.ApproxTime.Microseconds()), "approx-setup-us")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CompareClassifierSetup("bench", set, 0.25,
			experiments.DefaultTheta, chooseFrac(ddh), experiments.DefaultSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func chooseFrac(ddh bool) float64 {
	if ddh {
		return experiments.DDHQueryFrac
	}
	return experiments.DefaultQueryFrac
}

// BenchmarkClassifierExactVsApprox is the Section 5.3 / Chapter 7 ablation:
// exact subset enumeration vs the linear-time approximation, with θ widened
// so uncertain schemas actually exist.
func BenchmarkClassifierExactVsApprox(b *testing.B) {
	c := loadCorpora()
	var cmp *experiments.SetupComparison
	for i := 0; i < b.N; i++ {
		var err error
		cmp, err = experiments.CompareClassifierSetup("DW∪SS θ=0.15", c.Both, 0.25, 0.15,
			experiments.DefaultQueryFrac, experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cmp.Agreement, "top1-agreement")
	b.ReportMetric(float64(cmp.Uncertain), "uncertain-schemas")
	b.Logf("\n%s", cmp.Render())
}

// BenchmarkAblationTermSim compares the LCS t_sim against stem and exact
// matching (the Section 4.1 alternative).
func BenchmarkAblationTermSim(b *testing.B) {
	c := loadCorpora()
	var rows []experiments.TermSimAblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.TermSimAblation(c.Both, 0.25)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.SimName == "lcs" {
			b.ReportMetric(r.Metrics.Precision, "lcs-precision")
		}
	}
	b.Logf("\n%s", experiments.RenderTermSimAblation(rows, 0.25))
}

// BenchmarkAblationTheta varies the uncertainty width θ (Section 4.3) and
// its effect on uncertain-schema counts and classifier setup.
func BenchmarkAblationTheta(b *testing.B) {
	c := loadCorpora()
	var rows []experiments.ThetaAblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ThetaAblation(c.Both, 0.25, []float64{0, 0.02, 0.1, 0.2})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[1].Uncertain), "uncertain@theta0.02")
	b.ReportMetric(float64(rows[3].Uncertain), "uncertain@theta0.2")
	b.Logf("\n%s", experiments.RenderThetaAblation(rows, 0.25))
}

// BenchmarkBaselineClusterers compares HAC against k-means, DBSCAN, and the
// chi-square model-based baseline on DDH.
func BenchmarkBaselineClusterers(b *testing.B) {
	c := loadCorpora()
	var rows []experiments.BaselineRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.BaselineComparison(c.DDH, 0.25, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Algorithm == "hac-avg-jaccard" {
			b.ReportMetric(r.Metrics.Precision, "hac-precision")
			b.ReportMetric(r.Metrics.Recall, "hac-recall")
		}
	}
	b.Logf("\n%s", experiments.RenderBaselines(rows))
}

// BenchmarkQueryLatency measures per-query classification latency on the
// built DW∪SS classifier — the O(|D| dim L) query-time bound of Section 5.3.
func BenchmarkQueryLatency(b *testing.B) {
	c := loadCorpora()
	res, err := experiments.QueryClassification("warm", c.Both, experiments.ClassOptions{
		PerSize: 1, MaxSize: 1, Seed: experiments.DefaultSeed,
	})
	if err != nil {
		b.Fatal(err)
	}
	_ = res
	// Build once, classify b.N times.
	sys := buildBothSystem(b)
	query := []string{"hotel", "check", "amenities"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := sys.Classify(query); len(got) == 0 {
			b.Fatal("no scores")
		}
	}
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// buildBothSystem constructs the standard classifier over DW∪SS once.
func buildBothSystem(b *testing.B) *classifierUnderTest {
	b.Helper()
	c := loadCorpora()
	m, err := experiments.BuildStandardModel(c.Both, 0.25, experiments.DefaultTheta)
	if err != nil {
		b.Fatal(err)
	}
	cls, err := classify.New(m, classify.Config{})
	if err != nil {
		b.Fatal(err)
	}
	return &classifierUnderTest{cls: cls}
}

type classifierUnderTest struct {
	cls *classify.Classifier
}

func (c *classifierUnderTest) Classify(keywords []string) []classify.Score {
	return c.cls.Classify(keywords)
}
