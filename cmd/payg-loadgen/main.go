// Command payg-loadgen is a closed-loop load generator for payg-server.
// It drives a mixed workload (classify / classify-batch / query / ingest /
// feedback) at a target QPS against a running server, records per-endpoint
// latency with exact-within-capacity reservoirs, and writes the
// BENCH_serve.json report documented in docs/BENCHMARKS.md.
//
// Usage:
//
//	payg-server -in testdata/schemas.txt -tuples 50 -addr :8080 &
//	payg-loadgen -target http://localhost:8080 -qps 200 -duration 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"schemaflow/internal/loadgen"
)

func main() {
	log.SetPrefix("payg-loadgen: ")
	log.SetFlags(0)

	var (
		target     = flag.String("target", "", "base URL of the payg-server to drive (required), e.g. http://localhost:8080")
		qps        = flag.Float64("qps", 200, "target request rate; 0 means unpaced (as fast as the workers go)")
		workers    = flag.Int("workers", 8, "concurrent closed-loop workers")
		duration   = flag.Duration("duration", 10*time.Second, "how long to drive load")
		mixSpec    = flag.String("mix", "", "traffic mix as weight pairs, e.g. classify=55,batch=5,query=30,ingest=8,feedback=2 (default mix when empty)")
		top        = flag.Int("top", 3, "top-k domains requested per classify call")
		batchWidth = flag.Int("batch-width", 16, "schemas per classify/batch request")
		seed       = flag.Int64("seed", 1, "workload RNG seed (same seed + same server state = same request stream)")
		scenario   = flag.String("scenario", "steady-state", "scenario name recorded in the report")
		out        = flag.String("out", "BENCH_serve.json", "report output path; - writes to stdout")
	)
	flag.Parse()

	if *target == "" {
		fmt.Fprintln(os.Stderr, "payg-loadgen: -target is required")
		flag.Usage()
		os.Exit(2)
	}

	mix, err := loadgen.ParseMix(*mixSpec)
	if err != nil {
		log.Fatalf("bad -mix: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("driving %s: qps=%v workers=%d duration=%v mix=%+v", *target, *qps, *workers, *duration, mix)
	sc, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:    *target,
		QPS:        *qps,
		Workers:    *workers,
		Duration:   *duration,
		Mix:        mix,
		Top:        *top,
		BatchWidth: *batchWidth,
		Seed:       *seed,
		Name:       *scenario,
	})
	if err != nil {
		log.Fatalf("run failed: %v", err)
	}

	rep := &loadgen.Report{
		Description: "payg-server closed-loop load benchmark (cmd/payg-loadgen)",
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Scenarios:   []loadgen.Scenario{sc},
	}
	if err := rep.Validate(); err != nil {
		log.Fatalf("report failed validation: %v", err)
	}
	if err := rep.WriteFile(*out); err != nil {
		log.Fatalf("write report: %v", err)
	}
	log.Printf("scenario %q: %d requests, %.2f qps achieved (target %v), error_rate=%v",
		sc.Name, sc.Requests, sc.AchievedQPS, sc.TargetQPS, sc.ErrorRate)
	if *out != "-" {
		log.Printf("report written to %s", *out)
	}
}
