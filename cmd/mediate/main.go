// Command mediate builds a mediated schema with probabilistic mappings over
// a file of schemas — either per clustered domain (the default, the thesis'
// architecture) or over the whole file at once (-noclustering, the Section
// 6.3 pathology demonstration).
//
// Usage:
//
//	mediate -in schemas.txt [-threshold 0.1] [-tau 0.25] [-noclustering] [-mappings]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"schemaflow/internal/cli"
	"schemaflow/internal/mediate"
	"schemaflow/internal/schema"
	"schemaflow/payg"
)

func main() {
	in := flag.String("in", "", "schema file (.json or line format); required")
	threshold := flag.Float64("threshold", 0.1, "attribute frequency threshold (0 disables filtering)")
	tau := flag.Float64("tau", 0.25, "clustering threshold tau_c_sim")
	noClustering := flag.Bool("noclustering", false, "mediate the whole file as one domain")
	showMappings := flag.Bool("mappings", false, "print each schema's probabilistic mappings")
	flag.Parse()

	if err := run(*in, *threshold, *tau, *noClustering, *showMappings); err != nil {
		fmt.Fprintln(os.Stderr, "mediate:", err)
		os.Exit(1)
	}
}

func run(in string, threshold, tau float64, noClustering, showMappings bool) error {
	set, err := cli.ReadSchemasFile(in)
	if err != nil {
		return err
	}

	opts := mediate.DefaultOptions()
	if threshold == 0 {
		opts.Negative = true
	} else {
		opts.FreqThreshold = threshold
	}

	if noClustering {
		med, err := mediate.Build(set, opts)
		if err != nil {
			return err
		}
		printMediated("all schemas (no clustering)", med, showMappings)
		return nil
	}

	sys, err := payg.Build(set, payg.Options{
		TauCSim:                tau,
		MediationFreqThreshold: threshold,
	})
	if err != nil {
		return err
	}
	for _, d := range sys.Domains() {
		var members schema.Set
		for _, mem := range d.Schemas {
			for _, s := range set {
				if s.Name == mem.Name {
					members = append(members, s)
					break
				}
			}
		}
		med, err := mediate.Build(members, opts)
		if err != nil {
			return err
		}
		printMediated(fmt.Sprintf("domain %d", d.ID), med, showMappings)
	}
	return nil
}

func printMediated(title string, med *mediate.Mediated, showMappings bool) {
	fmt.Printf("== %s ==\n%s", title, med.Describe())
	if !showMappings {
		fmt.Println()
		return
	}
	for i, mappings := range med.Mappings {
		fmt.Printf("  mappings of %s:\n", med.Schemas[i].Name)
		for _, mp := range mappings {
			var parts []string
			for k, to := range mp.AttrTo {
				if to < 0 {
					continue
				}
				parts = append(parts, fmt.Sprintf("%s→%s", med.Schemas[i].Attributes[k], med.Attrs[to].Name))
			}
			fmt.Printf("    Pr=%.3f  %s\n", mp.Prob, strings.Join(parts, ", "))
		}
	}
	fmt.Println()
}
