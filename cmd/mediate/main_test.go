package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeSchemas(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "schemas.txt")
	content := `f1 | first name, last name, email
f2 | first name, family name, email, fax
car1 | make, model, price
car2 | car make, model, color
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPerDomain(t *testing.T) {
	if err := run(writeSchemas(t), 0.1, 0.2, false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoClustering(t *testing.T) {
	if err := run(writeSchemas(t), 0, 0.2, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingInput(t *testing.T) {
	if err := run("", 0.1, 0.2, false, false); err == nil {
		t.Fatal("missing -in accepted")
	}
}
