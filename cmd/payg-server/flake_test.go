package main

import (
	"testing"
	"time"

	"schemaflow/internal/engine"
)

func TestParseFlakeSpec(t *testing.T) {
	sp, err := parseFlakeSpec("air1:err=0.1,lat=5ms,jit=2ms,down=2s+3s,down=10s+1s")
	if err != nil {
		t.Fatal(err)
	}
	if sp.name != "air1" || sp.errRate != 0.1 || sp.latency != 5*time.Millisecond || sp.jitter != 2*time.Millisecond {
		t.Fatalf("spec = %+v", sp)
	}
	want := []engine.BlackoutWindow{
		{From: 2 * time.Second, Until: 5 * time.Second},
		{From: 10 * time.Second, Until: 11 * time.Second},
	}
	if len(sp.windows) != 2 || sp.windows[0] != want[0] || sp.windows[1] != want[1] {
		t.Fatalf("windows = %+v, want %+v", sp.windows, want)
	}

	for _, bad := range []string{
		"", "air1", "air1:", ":err=0.1", "air1:err", "air1:err=2",
		"air1:down=2s", "air1:down=2s+0s", "air1:nope=1", "air1:lat=fast",
	} {
		if _, err := parseFlakeSpec(bad); err == nil {
			t.Errorf("parseFlakeSpec(%q) accepted", bad)
		}
	}
}

func TestMatchFlake(t *testing.T) {
	specs := []flakeSpec{
		{name: "*", errRate: 0.5},
		{name: "air1", errRate: 0.1},
	}
	if sp, ok := matchFlake(specs, "air1"); !ok || sp.errRate != 0.1 {
		t.Fatalf("exact match lost to wildcard: %+v %v", sp, ok)
	}
	if sp, ok := matchFlake(specs, "bib1"); !ok || sp.errRate != 0.5 {
		t.Fatalf("wildcard fallback: %+v %v", sp, ok)
	}
	if _, ok := matchFlake(specs[1:], "bib1"); ok {
		t.Fatal("matched nothing")
	}
}
