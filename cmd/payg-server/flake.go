package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"schemaflow/internal/engine"
	"schemaflow/payg"
)

// flakeSpec is one parsed -flake directive: fault-injection knobs applied
// to the synthetic source whose schema name matches (or to every source,
// for "*"). It exists so chaos experiments can script outages on a stock
// binary — the load harness starts payg-server with e.g.
//
//	-flake 'air1:down=2s+3s'
//
// and the air1 source goes hard-down from t=2s to t=5s after startup,
// then heals itself.
type flakeSpec struct {
	name    string // schema name, or "*" for all sources
	errRate float64
	latency time.Duration
	jitter  time.Duration
	windows []engine.BlackoutWindow
}

// parseFlakeSpec parses NAME:key=val[,key=val...] where keys are
// err (probability), lat / jit (durations), and down=START+DUR
// (repeatable; a scheduled blackout window measured from startup).
func parseFlakeSpec(s string) (flakeSpec, error) {
	var spec flakeSpec
	name, rest, ok := strings.Cut(s, ":")
	if !ok || name == "" || rest == "" {
		return spec, fmt.Errorf("want NAME:key=val[,key=val...], got %q", s)
	}
	spec.name = name
	for _, kv := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok || val == "" {
			return spec, fmt.Errorf("bad knob %q in %q", kv, s)
		}
		var err error
		switch key {
		case "err":
			spec.errRate, err = strconv.ParseFloat(val, 64)
			if err == nil && (spec.errRate < 0 || spec.errRate > 1) {
				err = fmt.Errorf("probability out of [0,1]")
			}
		case "lat":
			spec.latency, err = time.ParseDuration(val)
		case "jit":
			spec.jitter, err = time.ParseDuration(val)
		case "down":
			from, durs, ok := strings.Cut(val, "+")
			if !ok {
				return spec, fmt.Errorf("bad down window %q in %q: want down=START+DUR", val, s)
			}
			var start, dur time.Duration
			if start, err = time.ParseDuration(from); err == nil {
				dur, err = time.ParseDuration(durs)
			}
			if err == nil && dur <= 0 {
				err = fmt.Errorf("window duration must be positive")
			}
			spec.windows = append(spec.windows, engine.BlackoutWindow{From: start, Until: start + dur})
		default:
			return spec, fmt.Errorf("unknown knob %q in %q (want err, lat, jit, or down)", key, s)
		}
		if err != nil {
			return spec, fmt.Errorf("bad value for %s in %q: %v", key, s, err)
		}
	}
	return spec, nil
}

// match returns the first spec applying to schema name, if any. An exact
// name wins over "*" regardless of order.
func matchFlake(specs []flakeSpec, name string) (flakeSpec, bool) {
	var star flakeSpec
	haveStar := false
	for _, sp := range specs {
		if sp.name == name {
			return sp, true
		}
		if sp.name == "*" && !haveStar {
			star, haveStar = sp, true
		}
	}
	return star, haveStar
}

// applyFlake wraps a synthetic source in a FlakeSource carrying the
// spec's knobs; blackout windows are armed immediately, so their clock
// starts when the server builds its sources (i.e. at startup).
func applyFlake(sp flakeSpec, name string, tuples []payg.Tuple, seed int64) payg.TupleSource {
	f := engine.NewFlakeSource(name, tuples, seed)
	f.ErrRate = sp.errRate
	f.Latency = sp.latency
	f.LatencyJitter = sp.jitter
	if len(sp.windows) > 0 {
		f.ScheduleBlackouts(sp.windows...)
	}
	return f
}
