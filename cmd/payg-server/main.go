// Command payg-server serves a pay-as-you-go integration system over HTTP:
// the Figure 3.1 search-engine workflow as a service. It builds the system
// from a schema file, optionally attaches synthetic data so /query works,
// and listens for JSON requests.
//
// The query path runs under a per-source resilience policy (timeout,
// retries with backoff, circuit breaker) and degrades gracefully: when
// some sources fail, /query returns the healthy sources' tuples plus a
// "degraded" report instead of an error. The server itself drains
// connections on SIGINT/SIGTERM, recovers panics, and bounds request
// bodies and durations.
//
// New schemas can arrive while the server runs (POST /schemas): each is
// assigned to current domains immediately and journaled; when the fraction
// of unassignable arrivals drifts past -drift-threshold (or every
// -rebuild-interval while schemas are pending, or on POST
// /admin/recluster) the model is fully reclustered in the background and
// swapped in atomically — traffic never blocks on a rebuild.
//
// With -data-dir the server is durable: every accepted ingest and
// feedback is written to a write-ahead log before it is acknowledged, and
// every recluster swap writes an atomic checkpoint. On restart with the
// same -data-dir the server recovers its exact pre-crash state (newest
// checkpoint + WAL replay) and ignores -in. -fsync picks the WAL
// durability/latency trade-off; see docs/OPERATIONS.md § Durability.
//
// With -follow the server is a read-only replica instead: it bootstraps
// from the leader's GET /admin/snapshot, serves every read endpoint
// locally, rejects writes with 403, and polls the leader every
// -poll-interval, atomically swapping in each new generation.
//
// The server is observable in production: GET /metrics exposes the full
// metrics registry (Prometheus text format; JSON with Accept:
// application/json), GET /healthz reports ingestion status, serving
// generation, and per-source circuit-breaker states, every request is
// logged as one structured JSON line on stderr, and -pprof mounts
// net/http/pprof under /debug/pprof/. See docs/OPERATIONS.md for the
// runbook and docs/METRICS.md for the metric reference.
//
// Usage:
//
//	payg-server -in schemas.txt [-addr :8080] [-tau 0.25] [-tuples 20]
//	            [-source-timeout 2s] [-retries 2]
//	            [-drift-threshold 0.5] [-rebuild-interval 0] [-pprof]
//	            [-data-dir /var/lib/payg] [-fsync always|interval|none]
//	            [-checkpoint-retain 3] [-flake 'air1:down=2s+3s']
//	payg-server -follow http://leader:8080 [-addr :8081] [-poll-interval 2s]
//
//	curl 'localhost:8080/classify?q=departure+toronto'
//	curl 'localhost:8080/domains'
//	curl -X POST localhost:8080/query -d '{"domain":0,"select":["departure"]}'
//	curl -X POST localhost:8080/schemas -d '{"name":"cruises","attributes":["departure port","destination port","price"]}'
//	curl -X POST localhost:8080/admin/recluster
//	curl 'localhost:8080/metrics'
//	curl 'localhost:8080/healthz'
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"schemaflow/internal/cli"
	"schemaflow/internal/dataset"
	"schemaflow/internal/server"
	"schemaflow/payg"
)

type options struct {
	in, addr         string
	tau              float64
	candGen          string
	lshBands         int
	lshRows          int
	candThreshold    float64
	tuples           int
	sourceTimeout    time.Duration
	retries          int
	driftThreshold   float64
	rebuildInterval  time.Duration
	pprofOn          bool
	queryCache       int
	dataDir          string
	fsync            string
	checkpointRetain int
	follow           string
	pollInterval     time.Duration
	flakes           []flakeSpec
}

func main() {
	var o options
	flag.StringVar(&o.in, "in", "", "schema file (.json or line format); required unless recovering from -data-dir or following")
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.Float64Var(&o.tau, "tau", 0.25, "clustering threshold tau_c_sim")
	flag.StringVar(&o.candGen, "candgen", "auto", "clustering candidate generation: auto, exact, or lsh (sub-quadratic blocked build)")
	flag.IntVar(&o.lshBands, "lsh-bands", 128, "LSH bands for the blocked build")
	flag.IntVar(&o.lshRows, "lsh-rows", 2, "MinHash rows per LSH band")
	flag.Float64Var(&o.candThreshold, "cand-threshold", 0, "minimum estimated Jaccard for an LSH candidate pair (0 keeps every collision)")
	flag.IntVar(&o.tuples, "tuples", 20, "synthetic tuples per source for /query (0 disables data)")
	flag.DurationVar(&o.sourceTimeout, "source-timeout", 2*time.Second, "per-attempt timeout for each data-source fetch")
	flag.IntVar(&o.retries, "retries", 2, "retries per data-source fetch after the first failure")
	flag.Float64Var(&o.driftThreshold, "drift-threshold", 0.5, "fraction of recent unassignable arrivals that triggers a background recluster (negative disables)")
	flag.DurationVar(&o.rebuildInterval, "rebuild-interval", 0, "periodically recluster while ingested schemas are pending (0 disables)")
	flag.BoolVar(&o.pprofOn, "pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.IntVar(&o.queryCache, "query-cache", 0, "max cached classification results (0 = default 1024, negative disables)")
	flag.StringVar(&o.dataDir, "data-dir", "", "durability directory (WAL + checkpoints); restart with the same dir to recover")
	flag.StringVar(&o.fsync, "fsync", "always", "WAL fsync policy: always, interval, or none")
	flag.IntVar(&o.checkpointRetain, "checkpoint-retain", 3, "checkpoints to keep in -data-dir (min 1)")
	flag.StringVar(&o.follow, "follow", "", "leader base URL; run as a read-only snapshot-shipping follower")
	flag.DurationVar(&o.pollInterval, "poll-interval", 2*time.Second, "follower poll period against the leader")
	flag.Func("flake", "inject faults into a synthetic source: NAME:err=0.1,lat=5ms,jit=5ms,down=2s+3s (NAME=* for all; down= repeatable; flag repeatable; chaos testing only)", func(s string) error {
		spec, err := parseFlakeSpec(s)
		if err != nil {
			return err
		}
		o.flakes = append(o.flakes, spec)
		return nil
	})
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil)).With(slog.String("app", "payg-server"))
	if err := run(logger, o); err != nil {
		logger.Error("fatal", slog.Any("error", err))
		os.Exit(1)
	}
}

func run(logger *slog.Logger, o options) error {
	handler, follower, err := buildServer(logger, o)
	if err != nil {
		return err
	}
	defer handler.Close()

	srv := &http.Server{
		Addr:              o.addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Serve until the listener fails or a shutdown signal arrives; on
	// SIGINT/SIGTERM drain in-flight connections before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if follower != nil {
		go follower.Run(ctx)
	}
	errc := make(chan error, 1)
	go func() {
		logger.Info("listening",
			slog.String("addr", o.addr),
			slog.Bool("pprof", o.pprofOn),
			slog.Bool("follower", follower != nil))
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop()
		logger.Info("shutdown signal received; draining connections")
		drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(drainCtx); err != nil {
			return err
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		logger.Info("shutdown complete")
		return nil
	}
}

// buildServer picks the startup path: follower replica, recovery from an
// initialized data dir, or a fresh build from the schema file.
func buildServer(logger *slog.Logger, o options) (*server.Server, *server.Follower, error) {
	if o.follow != "" {
		if o.dataDir != "" {
			return nil, nil, errors.New("-follow and -data-dir are mutually exclusive: durability lives on the leader")
		}
		return buildFollower(logger, o)
	}

	cfg := server.Config{
		DriftThreshold:   o.driftThreshold,
		RebuildInterval:  o.rebuildInterval,
		Logger:           logger,
		EnablePprof:      o.pprofOn,
		QueryCacheSize:   o.queryCache,
		DataDir:          o.dataDir,
		FsyncMode:        o.fsync,
		CheckpointRetain: o.checkpointRetain,
	}
	policy := payg.DefaultPolicy()
	policy.Timeout = o.sourceTimeout
	policy.MaxRetries = o.retries
	cfg.Policy = policy

	if o.dataDir != "" {
		ok, err := payg.HasCheckpoint(o.dataDir)
		if err != nil {
			return nil, nil, err
		}
		if ok {
			return recoverServer(logger, o, cfg)
		}
	}

	if o.in == "" {
		return nil, nil, errors.New("-in is required (no -data-dir checkpoint to recover, not following)")
	}
	set, err := cli.ReadSchemasFile(o.in)
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	sys, err := payg.Build(set, payg.Options{
		TauCSim:            o.tau,
		CandidateGen:       o.candGen,
		LSHBands:           o.lshBands,
		LSHRows:            o.lshRows,
		CandidateThreshold: o.candThreshold,
	})
	if err != nil {
		return nil, nil, err
	}
	logger.Info("system built",
		slog.Int("domains", sys.NumDomains()),
		slog.Int("schemas", sys.NumSchemas()),
		slog.Duration("took", time.Since(start).Round(time.Millisecond)))

	if o.tuples > 0 {
		cfg.Sources = make([]payg.TupleSource, len(set))
		for i, s := range set {
			cfg.Sources[i] = makeSource(logger, o, s, int64(i))
		}
		logger.Info("attached synthetic data", slog.Int("tuples_per_source", o.tuples))
	}

	handler, err := server.NewWithConfig(sys, cfg)
	if err != nil {
		return nil, nil, err
	}
	return handler, nil, nil
}

// recoverServer restores the pre-crash state from the data dir: newest
// checkpoint plus WAL replay. -in is ignored — the durable state is the
// source of truth.
func recoverServer(logger *slog.Logger, o options, cfg server.Config) (*server.Server, *server.Follower, error) {
	if o.in != "" {
		logger.Warn("ignoring -in: recovering state from -data-dir", slog.String("data_dir", o.dataDir))
	}
	start := time.Now()
	mgr, err := payg.LoadManagerDir(o.dataDir, payg.ManagerOptions{
		Policy:           cfg.Policy,
		DriftThreshold:   o.driftThreshold,
		DriftWindow:      cfg.DriftWindow,
		RebuildInterval:  o.rebuildInterval,
		QueryCacheSize:   o.queryCache,
		DataDir:          o.dataDir,
		FsyncMode:        o.fsync,
		CheckpointRetain: o.checkpointRetain,
		ServeData:        o.tuples > 0,
		MakeSource: func(sch payg.Schema) payg.TupleSource {
			return makeSource(logger, o, sch, int64(len(sch.Name)))
		},
		Logf: func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		},
	})
	if err != nil {
		return nil, nil, fmt.Errorf("recovering from %s: %w", o.dataDir, err)
	}
	st := mgr.Status()
	logger.Info("recovered from data dir",
		slog.String("data_dir", o.dataDir),
		slog.Int("schemas", st.Schemas),
		slog.Int("domains", st.Domains),
		slog.Int("pending", st.Pending),
		slog.Int("generation", st.Generation),
		slog.Duration("took", time.Since(start).Round(time.Millisecond)))
	return server.NewWithManager(mgr, cfg), nil, nil
}

// buildFollower bootstraps a read-only replica from the leader's current
// snapshot and returns the poll loop that keeps it converged.
func buildFollower(logger *slog.Logger, o options) (*server.Server, *server.Follower, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	snap, gen, err := server.FetchSnapshot(ctx, nil, o.follow)
	if err != nil {
		return nil, nil, fmt.Errorf("bootstrapping from leader %s: %w", o.follow, err)
	}
	mgr, err := payg.LoadManagerAt(bytes.NewReader(snap), gen, nil, payg.ManagerOptions{
		QueryCacheSize: o.queryCache,
		Logf: func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		},
	})
	if err != nil {
		return nil, nil, fmt.Errorf("loading leader snapshot: %w", err)
	}
	st := mgr.Status()
	logger.Info("bootstrapped from leader",
		slog.String("leader", o.follow),
		slog.Int("schemas", st.Schemas),
		slog.Int("domains", st.Domains),
		slog.Int("generation", st.Generation))
	handler := server.NewWithManager(mgr, server.Config{
		Logger:      logger,
		EnablePprof: o.pprofOn,
		ReadOnly:    true,
	})
	follower := server.NewFollower(mgr, server.FollowerConfig{
		Leader:   o.follow,
		Interval: o.pollInterval,
		Logger:   logger,
	})
	return handler, follower, nil
}

// makeSource builds a deterministic in-memory source for a schema so
// /query serves data without external systems, wrapped in a fault
// injector when a -flake spec matches the schema name.
func makeSource(logger *slog.Logger, o options, s payg.Schema, seed int64) payg.TupleSource {
	rows := dataset.GenerateTuples(s, o.tuples, seed)
	ts := make([]payg.Tuple, len(rows))
	for k, r := range rows {
		ts[k] = r
	}
	if sp, ok := matchFlake(o.flakes, s.Name); ok {
		logger.Info("flake applied to source",
			slog.String("source", s.Name),
			slog.Float64("err_rate", sp.errRate),
			slog.Duration("latency", sp.latency),
			slog.Int("blackout_windows", len(sp.windows)))
		return applyFlake(sp, s.Name, ts, seed)
	}
	return payg.Source{Schema: s, Tuples: ts}
}
