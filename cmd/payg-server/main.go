// Command payg-server serves a pay-as-you-go integration system over HTTP:
// the Figure 3.1 search-engine workflow as a service. It builds the system
// from a schema file, optionally attaches synthetic data so /query works,
// and listens for JSON requests.
//
// The query path runs under a per-source resilience policy (timeout,
// retries with backoff, circuit breaker) and degrades gracefully: when
// some sources fail, /query returns the healthy sources' tuples plus a
// "degraded" report instead of an error. The server itself drains
// connections on SIGINT/SIGTERM, recovers panics, and bounds request
// bodies and durations.
//
// New schemas can arrive while the server runs (POST /schemas): each is
// assigned to current domains immediately and journaled; when the fraction
// of unassignable arrivals drifts past -drift-threshold (or every
// -rebuild-interval while schemas are pending, or on POST
// /admin/recluster) the model is fully reclustered in the background and
// swapped in atomically — traffic never blocks on a rebuild.
//
// The server is observable in production: GET /metrics exposes the full
// metrics registry (Prometheus text format; JSON with Accept:
// application/json), GET /healthz reports ingestion status plus per-source
// circuit-breaker states, every request is logged as one structured JSON
// line on stderr, and -pprof mounts net/http/pprof under /debug/pprof/.
// See docs/OPERATIONS.md for the runbook and docs/METRICS.md for the
// metric reference.
//
// Usage:
//
//	payg-server -in schemas.txt [-addr :8080] [-tau 0.25] [-tuples 20]
//	            [-source-timeout 2s] [-retries 2]
//	            [-drift-threshold 0.5] [-rebuild-interval 0] [-pprof]
//
//	curl 'localhost:8080/classify?q=departure+toronto'
//	curl 'localhost:8080/domains'
//	curl -X POST localhost:8080/query -d '{"domain":0,"select":["departure"]}'
//	curl -X POST localhost:8080/schemas -d '{"name":"cruises","attributes":["departure port","destination port","price"]}'
//	curl -X POST localhost:8080/admin/recluster
//	curl 'localhost:8080/metrics'
//	curl 'localhost:8080/healthz'
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"schemaflow/internal/cli"
	"schemaflow/internal/dataset"
	"schemaflow/internal/server"
	"schemaflow/payg"
)

func main() {
	in := flag.String("in", "", "schema file (.json or line format); required")
	addr := flag.String("addr", ":8080", "listen address")
	tau := flag.Float64("tau", 0.25, "clustering threshold tau_c_sim")
	tuples := flag.Int("tuples", 20, "synthetic tuples per source for /query (0 disables data)")
	sourceTimeout := flag.Duration("source-timeout", 2*time.Second, "per-attempt timeout for each data-source fetch")
	retries := flag.Int("retries", 2, "retries per data-source fetch after the first failure")
	driftThreshold := flag.Float64("drift-threshold", 0.5, "fraction of recent unassignable arrivals that triggers a background recluster (negative disables)")
	rebuildInterval := flag.Duration("rebuild-interval", 0, "periodically recluster while ingested schemas are pending (0 disables)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	queryCache := flag.Int("query-cache", 0, "max cached classification results (0 = default 1024, negative disables)")
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil)).With(slog.String("app", "payg-server"))
	if err := run(logger, *in, *addr, *tau, *tuples, *sourceTimeout, *retries, *driftThreshold, *rebuildInterval, *pprofOn, *queryCache); err != nil {
		logger.Error("fatal", slog.Any("error", err))
		os.Exit(1)
	}
}

func run(logger *slog.Logger, in, addr string, tau float64, tuples int, sourceTimeout time.Duration, retries int, driftThreshold float64, rebuildInterval time.Duration, pprofOn bool, queryCache int) error {
	set, err := cli.ReadSchemasFile(in)
	if err != nil {
		return err
	}
	start := time.Now()
	sys, err := payg.Build(set, payg.Options{TauCSim: tau})
	if err != nil {
		return err
	}
	logger.Info("system built",
		slog.Int("domains", sys.NumDomains()),
		slog.Int("schemas", sys.NumSchemas()),
		slog.Duration("took", time.Since(start).Round(time.Millisecond)))

	var sources []payg.TupleSource
	if tuples > 0 {
		sources = make([]payg.TupleSource, len(set))
		for i, s := range set {
			rows := dataset.GenerateTuples(s, tuples, int64(i))
			ts := make([]payg.Tuple, len(rows))
			for k, r := range rows {
				ts[k] = r
			}
			sources[i] = payg.Source{Schema: s, Tuples: ts}
		}
		logger.Info("attached synthetic data", slog.Int("tuples_per_source", tuples))
	}

	policy := payg.DefaultPolicy()
	policy.Timeout = sourceTimeout
	policy.MaxRetries = retries
	handler, err := server.NewWithConfig(sys, server.Config{
		Sources:         sources,
		Policy:          policy,
		DriftThreshold:  driftThreshold,
		RebuildInterval: rebuildInterval,
		Logger:          logger,
		EnablePprof:     pprofOn,
		QueryCacheSize:  queryCache,
	})
	if err != nil {
		return err
	}
	defer handler.Close()

	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Serve until the listener fails or a shutdown signal arrives; on
	// SIGINT/SIGTERM drain in-flight connections before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", slog.String("addr", addr), slog.Bool("pprof", pprofOn))
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop()
		logger.Info("shutdown signal received; draining connections")
		drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(drainCtx); err != nil {
			return err
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		logger.Info("shutdown complete")
		return nil
	}
}
