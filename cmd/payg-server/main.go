// Command payg-server serves a pay-as-you-go integration system over HTTP:
// the Figure 3.1 search-engine workflow as a service. It builds the system
// from a schema file, optionally attaches synthetic data so /query works,
// and listens for JSON requests.
//
// Usage:
//
//	payg-server -in schemas.txt [-addr :8080] [-tau 0.25] [-tuples 20]
//
//	curl 'localhost:8080/classify?q=departure+toronto'
//	curl 'localhost:8080/domains'
//	curl -X POST localhost:8080/query -d '{"domain":0,"select":["departure"]}'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"schemaflow/internal/cli"
	"schemaflow/internal/dataset"
	"schemaflow/internal/server"
	"schemaflow/payg"
)

func main() {
	in := flag.String("in", "", "schema file (.json or line format); required")
	addr := flag.String("addr", ":8080", "listen address")
	tau := flag.Float64("tau", 0.25, "clustering threshold tau_c_sim")
	tuples := flag.Int("tuples", 20, "synthetic tuples per source for /query (0 disables data)")
	flag.Parse()

	if err := run(*in, *addr, *tau, *tuples); err != nil {
		fmt.Fprintln(os.Stderr, "payg-server:", err)
		os.Exit(1)
	}
}

func run(in, addr string, tau float64, tuples int) error {
	set, err := cli.ReadSchemasFile(in)
	if err != nil {
		return err
	}
	start := time.Now()
	sys, err := payg.Build(set, payg.Options{TauCSim: tau})
	if err != nil {
		return err
	}
	fmt.Printf("built %d domains over %d schemas in %s\n",
		sys.NumDomains(), sys.NumSchemas(), time.Since(start).Round(time.Millisecond))

	var sources []payg.Source
	if tuples > 0 {
		sources = make([]payg.Source, len(set))
		for i, s := range set {
			rows := dataset.GenerateTuples(s, tuples, int64(i))
			ts := make([]payg.Tuple, len(rows))
			for k, r := range rows {
				ts[k] = r
			}
			sources[i] = payg.Source{Schema: s, Tuples: ts}
		}
		fmt.Printf("attached %d synthetic tuples per source\n", tuples)
	}

	srv := &http.Server{
		Addr:              addr,
		Handler:           server.New(sys, sources),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("listening on %s\n", addr)
	return srv.ListenAndServe()
}
