// Command payg-server serves a pay-as-you-go integration system over HTTP:
// the Figure 3.1 search-engine workflow as a service. It builds the system
// from a schema file, optionally attaches synthetic data so /query works,
// and listens for JSON requests.
//
// The query path runs under a per-source resilience policy (timeout,
// retries with backoff, circuit breaker) and degrades gracefully: when
// some sources fail, /query returns the healthy sources' tuples plus a
// "degraded" report instead of an error. The server itself drains
// connections on SIGINT/SIGTERM, recovers panics, and bounds request
// bodies and durations.
//
// New schemas can arrive while the server runs (POST /schemas): each is
// assigned to current domains immediately and journaled; when the fraction
// of unassignable arrivals drifts past -drift-threshold (or every
// -rebuild-interval while schemas are pending, or on POST
// /admin/recluster) the model is fully reclustered in the background and
// swapped in atomically — traffic never blocks on a rebuild.
//
// With -data-dir the server is durable: every accepted ingest and
// feedback is written to a write-ahead log before it is acknowledged, and
// every recluster swap writes an atomic checkpoint. On restart with the
// same -data-dir the server recovers its exact pre-crash state (newest
// checkpoint + WAL replay) and ignores -in. -fsync picks the WAL
// durability/latency trade-off; see docs/OPERATIONS.md § Durability.
//
// With -follow the server is a read-only replica instead: it bootstraps
// from the leader's GET /admin/snapshot, serves every read endpoint
// locally, rejects writes with 403, and polls the leader every
// -poll-interval, atomically swapping in each new generation.
//
// The serving tier also shards horizontally (see DESIGN.md § 11):
//
//   - payg-server -data-dir /var/lib/payg -shard-split 2 -shard-out /var/lib/shards
//     cuts the newest single-node checkpoint into per-shard data dirs
//     (shard-0, shard-1, ...) and exits.
//   - payg-server -data-dir /var/lib/shards/shard-0 serves one shard: the
//     shard.json manifest written by the splitter is auto-detected, the
//     system recovers domain-pruned, and drift/interval rebuilds are
//     disabled (a recluster is a topology-wide operation).
//   - payg-server -route http://s0:8081,http://s1:8082 -data-dir /var/lib/payg-router
//     runs the scatter-gather router: it speaks the ordinary API, merges
//     per-shard classification partials bit-identically to a single node,
//     routes ingests to the winning shard, and journals unroutable
//     arrivals under -data-dir.
//
// The server is observable in production: GET /metrics exposes the full
// metrics registry (Prometheus text format; JSON with Accept:
// application/json), GET /healthz reports ingestion status, serving
// generation, and per-source circuit-breaker states, every request is
// logged as one structured JSON line on stderr, and -pprof mounts
// net/http/pprof under /debug/pprof/. See docs/OPERATIONS.md for the
// runbook and docs/METRICS.md for the metric reference.
//
// Usage:
//
//	payg-server -in schemas.txt [-addr :8080] [-tau 0.25] [-tuples 20]
//	            [-source-timeout 2s] [-retries 2]
//	            [-drift-threshold 0.5] [-rebuild-interval 0] [-pprof]
//	            [-data-dir /var/lib/payg] [-fsync always|interval|none]
//	            [-checkpoint-retain 3] [-flake 'air1:down=2s+3s']
//	payg-server -follow http://leader:8080 [-addr :8081] [-poll-interval 2s]
//
//	curl 'localhost:8080/classify?q=departure+toronto'
//	curl 'localhost:8080/domains'
//	curl -X POST localhost:8080/query -d '{"domain":0,"select":["departure"]}'
//	curl -X POST localhost:8080/schemas -d '{"name":"cruises","attributes":["departure port","destination port","price"]}'
//	curl -X POST localhost:8080/admin/recluster
//	curl 'localhost:8080/metrics'
//	curl 'localhost:8080/healthz'
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"schemaflow/internal/cli"
	"schemaflow/internal/dataset"
	"schemaflow/internal/server"
	"schemaflow/internal/shard"
	"schemaflow/payg"
)

type options struct {
	in, addr         string
	tau              float64
	candGen          string
	lshBands         int
	lshRows          int
	candThreshold    float64
	vectorizer       string
	annM             int
	annEf            int
	annK             int
	tuples           int
	sourceTimeout    time.Duration
	retries          int
	driftThreshold   float64
	rebuildInterval  time.Duration
	pprofOn          bool
	queryCache       int
	dataDir          string
	fsync            string
	checkpointRetain int
	follow           string
	pollInterval     time.Duration
	route            string
	shardSplit       int
	shardOut         string
	flakes           []flakeSpec
}

func main() {
	var o options
	flag.StringVar(&o.in, "in", "", "schema file (.json or line format); required unless recovering from -data-dir or following")
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.Float64Var(&o.tau, "tau", 0.25, "clustering threshold tau_c_sim")
	flag.StringVar(&o.candGen, "candgen", "auto", "clustering candidate generation: auto, exact, or lsh (sub-quadratic blocked build)")
	flag.IntVar(&o.lshBands, "lsh-bands", 128, "LSH bands for the blocked build")
	flag.IntVar(&o.lshRows, "lsh-rows", 2, "MinHash rows per LSH band")
	flag.Float64Var(&o.candThreshold, "cand-threshold", 0, "minimum estimated Jaccard for an LSH candidate pair (0 keeps every collision)")
	flag.StringVar(&o.vectorizer, "vectorizer", "term", "embedding backend: term (exact, thesis behavior) or ngram (dense char-3-gram embeddings with ANN-pruned assignment and classification)")
	flag.IntVar(&o.annM, "ann-m", 0, "HNSW graph degree for -vectorizer=ngram (0 = default 16)")
	flag.IntVar(&o.annEf, "ann-ef", 0, "HNSW search beam width for -vectorizer=ngram (0 = default 64)")
	flag.IntVar(&o.annK, "ann-k", 0, "ANN shortlist size before exact verification for -vectorizer=ngram (0 = default 32, negative disables pruning)")
	flag.IntVar(&o.tuples, "tuples", 20, "synthetic tuples per source for /query (0 disables data)")
	flag.DurationVar(&o.sourceTimeout, "source-timeout", 2*time.Second, "per-attempt timeout for each data-source fetch")
	flag.IntVar(&o.retries, "retries", 2, "retries per data-source fetch after the first failure")
	flag.Float64Var(&o.driftThreshold, "drift-threshold", 0.5, "fraction of recent unassignable arrivals that triggers a background recluster (negative disables)")
	flag.DurationVar(&o.rebuildInterval, "rebuild-interval", 0, "periodically recluster while ingested schemas are pending (0 disables)")
	flag.BoolVar(&o.pprofOn, "pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.IntVar(&o.queryCache, "query-cache", 0, "max cached classification results (0 = default 1024, negative disables)")
	flag.StringVar(&o.dataDir, "data-dir", "", "durability directory (WAL + checkpoints); restart with the same dir to recover")
	flag.StringVar(&o.fsync, "fsync", "always", "WAL fsync policy: always, interval, or none")
	flag.IntVar(&o.checkpointRetain, "checkpoint-retain", 3, "checkpoints to keep in -data-dir (min 1)")
	flag.StringVar(&o.follow, "follow", "", "leader base URL; run as a read-only snapshot-shipping follower")
	flag.DurationVar(&o.pollInterval, "poll-interval", 2*time.Second, "follower poll period against the leader")
	flag.StringVar(&o.route, "route", "", "comma-separated shard base URLs; run as a scatter-gather router (-data-dir holds the unroutable-arrival journal)")
	flag.IntVar(&o.shardSplit, "shard-split", 0, "split -data-dir's newest checkpoint into this many shard data dirs under -shard-out, then exit")
	flag.StringVar(&o.shardOut, "shard-out", "", "output directory for -shard-split (shard-0, shard-1, ... are created inside it)")
	flag.Func("flake", "inject faults into a synthetic source: NAME:err=0.1,lat=5ms,jit=5ms,down=2s+3s (NAME=* for all; down= repeatable; flag repeatable; chaos testing only)", func(s string) error {
		spec, err := parseFlakeSpec(s)
		if err != nil {
			return err
		}
		o.flakes = append(o.flakes, spec)
		return nil
	})
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil)).With(slog.String("app", "payg-server"))
	if o.shardSplit > 0 {
		if err := runSplit(logger, o); err != nil {
			logger.Error("fatal", slog.Any("error", err))
			os.Exit(1)
		}
		return
	}
	if err := run(logger, o); err != nil {
		logger.Error("fatal", slog.Any("error", err))
		os.Exit(1)
	}
}

// app is one assembled serving mode: the handler to mount, an optional
// follower poll loop, and the teardown for whatever the mode owns.
type app struct {
	handler  http.Handler
	follower *server.Follower
	close    func()
}

func run(logger *slog.Logger, o options) error {
	a, err := buildApp(logger, o)
	if err != nil {
		return err
	}
	defer a.close()

	srv := &http.Server{
		Addr:              o.addr,
		Handler:           a.handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Serve until the listener fails or a shutdown signal arrives; on
	// SIGINT/SIGTERM drain in-flight connections before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if a.follower != nil {
		go a.follower.Run(ctx)
	}
	errc := make(chan error, 1)
	go func() {
		logger.Info("listening",
			slog.String("addr", o.addr),
			slog.Bool("pprof", o.pprofOn),
			slog.Bool("follower", a.follower != nil),
			slog.Bool("router", o.route != ""))
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop()
		logger.Info("shutdown signal received; draining connections")
		drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(drainCtx); err != nil {
			return err
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		logger.Info("shutdown complete")
		return nil
	}
}

// buildApp picks the startup path: scatter-gather router, follower
// replica, recovery from an initialized data dir (shard or single-node),
// or a fresh build from the schema file.
func buildApp(logger *slog.Logger, o options) (*app, error) {
	if o.route != "" {
		if o.follow != "" {
			return nil, errors.New("-route and -follow are mutually exclusive")
		}
		return buildRouter(logger, o)
	}
	if o.follow != "" {
		if o.dataDir != "" {
			return nil, errors.New("-follow and -data-dir are mutually exclusive: durability lives on the leader")
		}
		return buildFollower(logger, o)
	}

	cfg := server.Config{
		DriftThreshold:   o.driftThreshold,
		RebuildInterval:  o.rebuildInterval,
		Logger:           logger,
		EnablePprof:      o.pprofOn,
		QueryCacheSize:   o.queryCache,
		DataDir:          o.dataDir,
		FsyncMode:        o.fsync,
		CheckpointRetain: o.checkpointRetain,
	}
	policy := payg.DefaultPolicy()
	policy.Timeout = o.sourceTimeout
	policy.MaxRetries = o.retries
	cfg.Policy = policy

	if o.dataDir != "" {
		// A shard.json manifest marks the dir as one slice of a sharded
		// topology (written by -shard-split); serve it domain-pruned.
		man, sharded, err := shard.ReadManifest(o.dataDir)
		if err != nil {
			return nil, err
		}
		ok, err := payg.HasCheckpoint(o.dataDir)
		if err != nil {
			return nil, err
		}
		if sharded {
			if !ok {
				return nil, fmt.Errorf("%s has a shard manifest but no checkpoint; re-run -shard-split", o.dataDir)
			}
			return recoverServer(logger, o, cfg, &man)
		}
		if ok {
			return recoverServer(logger, o, cfg, nil)
		}
	}

	if o.in == "" {
		return nil, errors.New("-in is required (no -data-dir checkpoint to recover, not following)")
	}
	set, err := cli.ReadSchemasFile(o.in)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	sys, err := payg.Build(set, payg.Options{
		TauCSim:            o.tau,
		CandidateGen:       o.candGen,
		LSHBands:           o.lshBands,
		LSHRows:            o.lshRows,
		CandidateThreshold: o.candThreshold,
		Vectorizer:         o.vectorizer,
		ANNM:               o.annM,
		ANNEfSearch:        o.annEf,
		ANNShortlistK:      o.annK,
	})
	if err != nil {
		return nil, err
	}
	logger.Info("system built",
		slog.Int("domains", sys.NumDomains()),
		slog.Int("schemas", sys.NumSchemas()),
		slog.Duration("took", time.Since(start).Round(time.Millisecond)))

	if o.tuples > 0 {
		cfg.Sources = make([]payg.TupleSource, len(set))
		for i, s := range set {
			cfg.Sources[i] = makeSource(logger, o, s, int64(i))
		}
		logger.Info("attached synthetic data", slog.Int("tuples_per_source", o.tuples))
	}

	handler, err := server.NewWithConfig(sys, cfg)
	if err != nil {
		return nil, err
	}
	return &app{handler: handler, close: handler.Close}, nil
}

// buildRouter assembles the scatter-gather front-end over -route's shard
// URLs; -data-dir (required) holds the unroutable-arrival journal.
func buildRouter(logger *slog.Logger, o options) (*app, error) {
	if o.dataDir == "" {
		return nil, errors.New("-route requires -data-dir for the unroutable-arrival journal")
	}
	var urls []string
	for _, u := range strings.Split(o.route, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		return nil, errors.New("-route lists no shard URLs")
	}
	rt, err := shard.NewRouter(shard.RouterConfig{
		Shards:     urls,
		Logger:     logger,
		JournalDir: o.dataDir,
	})
	if err != nil {
		return nil, err
	}
	logger.Info("routing over shards", slog.Int("shards", len(urls)), slog.Any("urls", urls))
	return &app{handler: rt, close: func() {
		if err := rt.Close(); err != nil {
			logger.Warn("closing router journal", slog.Any("error", err))
		}
	}}, nil
}

// runSplit is the offline checkpoint splitter: -data-dir's newest
// checkpoint becomes -shard-split pruned shard dirs under -shard-out.
func runSplit(logger *slog.Logger, o options) error {
	if o.dataDir == "" {
		return errors.New("-shard-split requires -data-dir (the single-node checkpoint to split)")
	}
	if o.shardOut == "" {
		return errors.New("-shard-split requires -shard-out")
	}
	start := time.Now()
	sum, err := shard.SplitCheckpoint(o.dataDir, o.shardOut, o.shardSplit)
	if err != nil {
		return err
	}
	for i, dir := range sum.Dirs {
		logger.Info("shard written",
			slog.Int("shard", i),
			slog.String("dir", dir),
			slog.Int("local_domains", sum.LocalDomains[i]),
			slog.Int("pending", sum.Pending[i]))
	}
	logger.Info("split complete",
		slog.Int("shards", o.shardSplit),
		slog.Int("domains", sum.Domains),
		slog.Int("generation", sum.Generation),
		slog.Duration("took", time.Since(start).Round(time.Millisecond)))
	return nil
}

// recoverServer restores the pre-crash state from the data dir: newest
// checkpoint plus WAL replay. -in is ignored — the durable state is the
// source of truth. A non-nil manifest serves the dir as one shard of a
// sharded topology: the recovered system is re-pruned to the manifest's
// slice of the hash ring after every rebuild, and local drift/interval
// reclusters are disabled (a recluster is a topology-wide operation).
func recoverServer(logger *slog.Logger, o options, cfg server.Config, man *shard.Manifest) (*app, error) {
	if o.in != "" {
		logger.Warn("ignoring -in: recovering state from -data-dir", slog.String("data_dir", o.dataDir))
	}
	opts := payg.ManagerOptions{
		Policy:           cfg.Policy,
		DriftThreshold:   o.driftThreshold,
		DriftWindow:      cfg.DriftWindow,
		RebuildInterval:  o.rebuildInterval,
		QueryCacheSize:   o.queryCache,
		DataDir:          o.dataDir,
		FsyncMode:        o.fsync,
		CheckpointRetain: o.checkpointRetain,
		ServeData:        o.tuples > 0,
		MakeSource: func(sch payg.Schema) payg.TupleSource {
			return makeSource(logger, o, sch, int64(len(sch.Name)))
		},
		Logf: func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		},
	}
	if man != nil {
		opts.DriftThreshold = -1
		opts.RebuildInterval = 0
		opts.Transform = func(sys *payg.System) (*payg.System, error) {
			return sys.Shard(shard.LocalDomains(sys.NumDomains(), man.Index, man.Shards))
		}
	}
	start := time.Now()
	mgr, err := payg.LoadManagerDir(o.dataDir, opts)
	if err != nil {
		return nil, fmt.Errorf("recovering from %s: %w", o.dataDir, err)
	}
	st := mgr.Status()
	logger.Info("recovered from data dir",
		slog.String("data_dir", o.dataDir),
		slog.Int("schemas", st.Schemas),
		slog.Int("domains", st.Domains),
		slog.Int("pending", st.Pending),
		slog.Int("generation", st.Generation),
		slog.Duration("took", time.Since(start).Round(time.Millisecond)))
	if man != nil {
		logger.Info("serving as shard",
			slog.Int("shard", man.Index),
			slog.Int("shards", man.Shards),
			slog.Int("local_domains", mgr.System().NumLocalDomains()))
	}
	handler := server.NewWithManager(mgr, cfg)
	return &app{handler: handler, close: handler.Close}, nil
}

// buildFollower bootstraps a read-only replica from the leader's current
// snapshot and returns the poll loop that keeps it converged.
func buildFollower(logger *slog.Logger, o options) (*app, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	snap, gen, err := server.FetchSnapshot(ctx, nil, o.follow)
	if err != nil {
		return nil, fmt.Errorf("bootstrapping from leader %s: %w", o.follow, err)
	}
	mgr, err := payg.LoadManagerAt(bytes.NewReader(snap), gen, nil, payg.ManagerOptions{
		QueryCacheSize: o.queryCache,
		Logf: func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		},
	})
	if err != nil {
		return nil, fmt.Errorf("loading leader snapshot: %w", err)
	}
	st := mgr.Status()
	logger.Info("bootstrapped from leader",
		slog.String("leader", o.follow),
		slog.Int("schemas", st.Schemas),
		slog.Int("domains", st.Domains),
		slog.Int("generation", st.Generation))
	handler := server.NewWithManager(mgr, server.Config{
		Logger:      logger,
		EnablePprof: o.pprofOn,
		ReadOnly:    true,
	})
	follower := server.NewFollower(mgr, server.FollowerConfig{
		Leader:   o.follow,
		Interval: o.pollInterval,
		Logger:   logger,
	})
	return &app{handler: handler, follower: follower, close: handler.Close}, nil
}

// makeSource builds a deterministic in-memory source for a schema so
// /query serves data without external systems, wrapped in a fault
// injector when a -flake spec matches the schema name.
func makeSource(logger *slog.Logger, o options, s payg.Schema, seed int64) payg.TupleSource {
	rows := dataset.GenerateTuples(s, o.tuples, seed)
	ts := make([]payg.Tuple, len(rows))
	for k, r := range rows {
		ts[k] = r
	}
	if sp, ok := matchFlake(o.flakes, s.Name); ok {
		logger.Info("flake applied to source",
			slog.String("source", s.Name),
			slog.Float64("err_rate", sp.errRate),
			slog.Duration("latency", sp.latency),
			slog.Int("blackout_windows", len(sp.windows)))
		return applyFlake(sp, s.Name, ts, seed)
	}
	return payg.Source{Schema: s, Tuples: ts}
}
