package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeSchemas(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "schemas.txt")
	content := `air1 | departure, destination, airline
air2 | departure city, destination city, carrier
bib1 | title, authors, publication year
bib2 | paper title, author, year
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunWithQueries(t *testing.T) {
	if err := run(writeSchemas(t), 0.2, 2, false, true, []string{"departure toronto", "title author"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunApproximate(t *testing.T) {
	if err := run(writeSchemas(t), 0.2, 1, true, false, []string{"airline"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingInput(t *testing.T) {
	if err := run("", 0.2, 3, false, false, nil); err == nil {
		t.Fatal("missing -in accepted")
	}
}
