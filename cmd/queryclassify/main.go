// Command queryclassify builds the full pipeline over a schema file and
// classifies keyword queries into domains: queries come from the command
// line (after the flags) or, if none are given, one per line on stdin.
//
// Usage:
//
//	queryclassify -in schemas.txt [-tau 0.25] [-top 3] "departure toronto"
//	echo "title author" | queryclassify -in schemas.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"schemaflow/internal/cli"
	"schemaflow/payg"
)

func main() {
	in := flag.String("in", "", "schema file (.json or line format); required")
	tau := flag.Float64("tau", 0.25, "clustering threshold tau_c_sim")
	top := flag.Int("top", 3, "how many domains to print per query")
	approx := flag.Bool("approx", false, "use the linear-time approximate classifier")
	explain := flag.Bool("explain", false, "itemize the top domain's per-term score contributions")
	flag.Parse()

	if err := run(*in, *tau, *top, *approx, *explain, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "queryclassify:", err)
		os.Exit(1)
	}
}

func run(in string, tau float64, top int, approx, explain bool, queries []string) error {
	set, err := cli.ReadSchemasFile(in)
	if err != nil {
		return err
	}
	sys, err := payg.Build(set, payg.Options{
		TauCSim:               tau,
		SkipMediation:         true,
		ApproximateClassifier: approx,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "built %d domains over %d schemas\n", sys.NumDomains(), len(set))

	classifyOne := func(q string) {
		scores := sys.Classify(q)
		if top < len(scores) {
			scores = scores[:top]
		}
		fmt.Printf("%q:\n", q)
		for rank, s := range scores {
			var names []string
			for _, mem := range sys.Domains()[s.Domain].Schemas {
				names = append(names, mem.Name)
				if len(names) == 3 {
					names = append(names, "...")
					break
				}
			}
			fmt.Printf("  #%d domain %-4d posterior %.3f  {%s}\n",
				rank+1, s.Domain, s.Posterior, strings.Join(names, ", "))
		}
		if explain && len(scores) > 0 {
			ex, err := sys.Explain(q, scores[0].Domain)
			if err == nil {
				fmt.Print(ex.String())
			}
		}
	}

	if len(queries) > 0 {
		for _, q := range queries {
			classifyOne(q)
		}
		return nil
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			classifyOne(line)
		}
	}
	return sc.Err()
}
