// Command schemagen writes one of the synthetic evaluation corpora (DW, SS,
// their union, DDH, or the scale-benchmark corpus "large") to a file, in
// the line format the other CLI tools read, or JSON with -json.
//
// Usage:
//
//	schemagen -set dw [-seed 1] [-json] > dw.txt
//	schemagen -set large -n 100000 -domains 500 > large.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"schemaflow/internal/dataset"
	"schemaflow/internal/schema"
)

func main() {
	which := flag.String("set", "dw", "corpus: dw, ss, both, ddh, large")
	seed := flag.Int64("seed", 1, "generator seed")
	n := flag.Int("n", 100000, "schemas to generate (set=large only)")
	domains := flag.Int("domains", 0, "ground-truth domains (set=large only; 0 = n/200)")
	asJSON := flag.Bool("json", false, "emit JSON instead of the line format")
	flag.Parse()

	var set schema.Set
	switch *which {
	case "dw":
		set = dataset.DW(*seed)
	case "ss":
		set = dataset.SS(*seed + 1)
	case "both":
		set = dataset.Union(dataset.DW(*seed), dataset.SS(*seed+1))
	case "ddh":
		set = dataset.DDH(*seed + 2)
	case "large":
		set = dataset.Large(dataset.LargeConfig{N: *n, Domains: *domains, Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "schemagen: unknown set %q\n", *which)
		os.Exit(1)
	}

	var err error
	if *asJSON {
		err = schema.WriteJSON(os.Stdout, set)
	} else {
		err = schema.WriteLines(os.Stdout, set)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "schemagen:", err)
		os.Exit(1)
	}
}
