// Command extractschemas turns raw structured sources into schema files the
// other tools consume — the Figure 6.1 pipeline stage. Each input file is
// processed according to -format (or its extension) and all extracted
// schemas are written to stdout in the line format (or JSON with -json).
//
// Usage:
//
//	extractschemas [-format auto|form|table|csv|nt] [-json] file...
//	extractschemas -format form deepweb/*.html > dw.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"schemaflow/internal/extract"
	"schemaflow/internal/schema"
)

func main() {
	format := flag.String("format", "auto", "source format: auto, form, table, csv, nt")
	asJSON := flag.Bool("json", false, "emit JSON instead of the line format")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "extractschemas: no input files")
		os.Exit(1)
	}
	var all schema.Set
	for _, path := range flag.Args() {
		set, err := extractFile(path, *format)
		if err != nil {
			fmt.Fprintln(os.Stderr, "extractschemas:", err)
			os.Exit(1)
		}
		all = append(all, set...)
	}
	var err error
	if *asJSON {
		err = schema.WriteJSON(os.Stdout, all)
	} else {
		err = schema.WriteLines(os.Stdout, all)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "extractschemas:", err)
		os.Exit(1)
	}
}

func extractFile(path, format string) (schema.Set, error) {
	if format == "auto" {
		switch strings.ToLower(filepath.Ext(path)) {
		case ".html", ".htm":
			format = "form"
		case ".csv", ".tsv":
			format = "csv"
		case ".nt", ".ntriples":
			format = "nt"
		default:
			return nil, fmt.Errorf("%s: cannot infer format; use -format", path)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	switch format {
	case "form":
		return extract.Forms(f, name)
	case "table":
		return extract.Tables(f, name)
	case "csv":
		return extract.Spreadsheet(f, name)
	case "nt":
		return extract.NTriples(f, name)
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
}
