// Command schemacluster clusters a file of single-table schemas into
// probabilistic domains and prints the result. When the input schemas carry
// ground-truth labels, it also reports the Section 6.1.2 quality measures.
//
// Input formats (chosen by extension): .json — a JSON array of
// {"name", "attributes", "labels"} objects; anything else — the line format
// "name | attr1, attr2[, ...] [| label1, label2]".
//
// Usage:
//
//	schemacluster -in schemas.txt [-tau 0.25] [-theta 0.02]
//	              [-linkage avg-jaccard] [-tsim lcs] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"schemaflow/internal/cli"
	"schemaflow/internal/eval"
	"schemaflow/payg"
)

func main() {
	in := flag.String("in", "", "schema file (.json or line format); required")
	tau := flag.Float64("tau", 0.25, "clustering threshold tau_c_sim")
	theta := flag.Float64("theta", 0.02, "membership uncertainty width theta")
	linkage := flag.String("linkage", "avg-jaccard", "cluster similarity: avg-jaccard, min-jaccard, max-jaccard, total-jaccard")
	tsim := flag.String("tsim", "lcs", "term similarity: lcs, stem, exact")
	verbose := flag.Bool("v", false, "print every domain member")
	report := flag.Int("report", 0, "print per-label diagnostics for the N worst labels (labeled input only)")
	flag.Parse()

	if err := run(*in, *tau, *theta, *linkage, *tsim, *verbose, *report); err != nil {
		fmt.Fprintln(os.Stderr, "schemacluster:", err)
		os.Exit(1)
	}
}

func run(in string, tau, theta float64, linkage, tsim string, verbose bool, report int) error {
	set, err := cli.ReadSchemasFile(in)
	if err != nil {
		return err
	}
	sys, err := payg.Build(set, payg.Options{
		TauCSim:        tau,
		Theta:          theta,
		Linkage:        linkage,
		TermSimilarity: tsim,
		SkipMediation:  true,
	})
	if err != nil {
		return err
	}

	fmt.Printf("%d schemas → %d domains (tau=%.2f, theta=%.2f, %s linkage, %s t_sim)\n\n",
		len(set), sys.NumDomains(), tau, theta, linkage, tsim)

	m := sys.Model()
	labeled := len(set.Labels()) > 0
	var dl *eval.DomainLabeling
	if labeled {
		dl = eval.LabelDomains(m, set)
	}
	for _, d := range sys.Domains() {
		tag := ""
		if d.Unclustered {
			tag = " (unclustered)"
		}
		label := ""
		if labeled && len(dl.Labels[d.ID]) > 0 {
			label = " [" + strings.Join(dl.Labels[d.ID], ", ") + "]"
		}
		fmt.Printf("domain %d: %d schemas%s%s\n", d.ID, len(d.Schemas), label, tag)
		if verbose || len(d.Schemas) <= 3 {
			for _, mem := range d.Schemas {
				fmt.Printf("  %-30s Pr=%.3f\n", mem.Name, mem.Prob)
			}
		}
	}

	if labeled {
		mt := eval.Evaluate(m, set)
		fmt.Printf("\nquality vs ground-truth labels:\n")
		fmt.Printf("  precision %.3f  recall %.3f  fragmentation %.2f  non-homog %.3f  unclustered %.3f\n",
			mt.Precision, mt.Recall, mt.Fragmentation, mt.FracNonHomogeneous, mt.FracUnclustered)
		if report != 0 {
			fmt.Println()
			fmt.Print(eval.RenderLabelReport(eval.ReportByLabel(m, set), report))
		}
	}
	return nil
}
