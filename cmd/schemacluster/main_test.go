package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeSchemas(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "schemas.txt")
	content := `bib1 | title, authors, publication year | bibliography
bib2 | paper title, author, year | bibliography
car1 | make, model, price | cars
car2 | car make, model, color | cars
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunLabeled(t *testing.T) {
	if err := run(writeSchemas(t), 0.2, 0.02, "avg-jaccard", "lcs", true, 3); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadInputs(t *testing.T) {
	if err := run("", 0.2, 0.02, "avg-jaccard", "lcs", false, 0); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := run(writeSchemas(t), 0.2, 0.02, "bogus", "lcs", false, 0); err == nil {
		t.Fatal("bogus linkage accepted")
	}
	if err := run(writeSchemas(t), 0.2, 0.02, "avg-jaccard", "bogus", false, 0); err == nil {
		t.Fatal("bogus t_sim accepted")
	}
}
