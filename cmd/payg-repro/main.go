// Command payg-repro regenerates every table and figure of the thesis'
// evaluation (Chapter 6) plus the DESIGN.md ablations, over the synthetic
// stand-in corpora.
//
// Usage:
//
//	payg-repro [-seed N] [-exp name] [-queries N]
//
// Experiments: all (default), table6.1, fig6.2, fig6.3, fig6.4, fig6.5,
// fig6.6, table6.2, ddh, med-coherence, med-threshold, fig6.7, ddh-queries,
// approx, ablate-tsim, ablate-features, ablate-mediation, ablate-theta,
// ablate-vectorizer, baselines, sensitivity,
// consistency.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"schemaflow/internal/classify"
	"schemaflow/internal/cluster"
	"schemaflow/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", experiments.DefaultSeed, "base corpus seed")
	exp := flag.String("exp", "all", "experiment to run")
	perSize := flag.Int("queries", experiments.QueriesPerSize, "queries per size for classification experiments")
	outDir := flag.String("out", "", "directory to write figure/table CSVs to (with -exp all)")
	flag.Parse()

	if err := run(*exp, *seed, *perSize, *outDir); err != nil {
		fmt.Fprintln(os.Stderr, "payg-repro:", err)
		os.Exit(1)
	}
}

func run(exp string, seed int64, perSize int, outDir string) error {
	c := experiments.LoadCorpora(seed)
	all := exp == "all"
	ran := false

	runExp := func(name string, f func() error) error {
		if !all && exp != name {
			return nil
		}
		ran = true
		start := time.Now()
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("[%s completed in %s]\n\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if err := runExp("table6.1", func() error {
		fmt.Print(experiments.RenderTable61(experiments.Table61(c)))
		return nil
	}); err != nil {
		return err
	}

	// Figures 6.2–6.6 share one sweep over DW∪SS.
	var sweep []experiments.SweepSeries
	needSweep := all
	figures := map[string]experiments.FigureMetric{
		"fig6.2": experiments.MetricPrecision,
		"fig6.3": experiments.MetricRecall,
		"fig6.4": experiments.MetricFragmentation,
		"fig6.5": experiments.MetricNonHomogeneous,
		"fig6.6": experiments.MetricUnclustered,
	}
	if _, ok := figures[exp]; ok {
		needSweep = true
	}
	if needSweep {
		var err error
		sweep, err = experiments.LinkageSweep(c.Both, experiments.DefaultTaus(), cluster.Methods(), experiments.DefaultTheta)
		if err != nil {
			return err
		}
	}
	for _, name := range []string{"fig6.2", "fig6.3", "fig6.4", "fig6.5", "fig6.6"} {
		name := name
		if err := runExp(name, func() error {
			fmt.Print(experiments.RenderFigure(sweep, figures[name]))
			return nil
		}); err != nil {
			return err
		}
	}

	var t62cells []experiments.Table62Cell
	if err := runExp("table6.2", func() error {
		var err error
		t62cells, err = experiments.Table62(c)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTable62(t62cells))
		return nil
	}); err != nil {
		return err
	}

	if err := runExp("ddh", func() error {
		results, err := experiments.DDHClustering(c.DDH,
			[]float64{0.2, 0.3, 0.5}, cluster.Methods())
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderDDH(results))
		return nil
	}); err != nil {
		return err
	}

	if err := runExp("med-coherence", func() error {
		res, err := experiments.MediationCoherence()
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		return nil
	}); err != nil {
		return err
	}

	if err := runExp("med-threshold", func() error {
		rows, err := experiments.MediationThreshold(c.DDH, []float64{0.1, 0.01, 0})
		if err != nil {
			return err
		}
		clustered, attrs, err := experiments.ClusteredMediationTime(c.DDH)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderThreshold(rows, clustered, attrs))
		return nil
	}); err != nil {
		return err
	}

	var fig67 *experiments.ClassificationResult
	if err := runExp("fig6.7", func() error {
		var err error
		fig67, err = experiments.QueryClassification("DW∪SS", c.Both, experiments.ClassOptions{
			PerSize: perSize, Seed: seed,
		})
		if err != nil {
			return err
		}
		fmt.Print(fig67.Render())
		return nil
	}); err != nil {
		return err
	}

	if err := runExp("ddh-queries", func() error {
		res, err := experiments.QueryClassification("DDH", c.DDH, experiments.ClassOptions{
			MinFrac: experiments.DDHQueryFrac, PerSize: perSize, Seed: seed,
		})
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		return nil
	}); err != nil {
		return err
	}

	if err := runExp("approx", func() error {
		// At the default θ=0.02 the corpus typically has no uncertain
		// schemas (the thesis' expectation), making exact and approximate
		// identical; θ=0.15 widens the uncertainty so the enumeration is
		// actually exercised.
		for _, nc := range []struct {
			name  string
			theta float64
		}{
			{"DW∪SS θ=0.02", experiments.DefaultTheta},
			{"DW∪SS θ=0.15", 0.15},
		} {
			cmp, err := experiments.CompareClassifierSetup(nc.name, c.Both, 0.25, nc.theta, experiments.DefaultQueryFrac, seed)
			if err != nil {
				return err
			}
			fmt.Print(cmp.Render())
		}
		// Also demonstrate the approximate classifier's quality curve.
		res, err := experiments.QueryClassification("DW∪SS", c.Both, experiments.ClassOptions{
			PerSize: perSize, Seed: seed, Mode: classify.Approximate,
		})
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		return nil
	}); err != nil {
		return err
	}

	if err := runExp("ablate-tsim", func() error {
		rows, err := experiments.TermSimAblation(c.Both, 0.25)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTermSimAblation(rows, 0.25))
		return nil
	}); err != nil {
		return err
	}

	if err := runExp("ablate-features", func() error {
		rows, err := experiments.FeatureModeAblation(c.Both, 0.25)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFeatureModeAblation(rows, 0.25))
		return nil
	}); err != nil {
		return err
	}

	if err := runExp("ablate-mediation", func() error {
		rows, err := experiments.MediationSimAblation(c.Both, 0.25)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderMediationSimAblation(rows))
		return nil
	}); err != nil {
		return err
	}

	if err := runExp("ablate-theta", func() error {
		rows, err := experiments.ThetaAblation(c.Both, 0.25, []float64{0, 0.02, 0.05, 0.1, 0.2})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderThetaAblation(rows, 0.25))
		return nil
	}); err != nil {
		return err
	}

	if err := runExp("ablate-vectorizer", func() error {
		rows, err := experiments.VectorizerAblation(c.Both, 0.25, seed)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderVectorizerAblation(rows, 0.25))
		return nil
	}); err != nil {
		return err
	}

	if err := runExp("baselines", func() error {
		rows, err := experiments.BaselineComparison(c.DDH, 0.25, 5)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderBaselines(rows))
		return nil
	}); err != nil {
		return err
	}

	if err := runExp("sensitivity", func() error {
		const seeds = 5
		rows, err := experiments.SeedSensitivity(seed, seeds, 0.25)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderSensitivity(rows, seeds, 0.25))
		return nil
	}); err != nil {
		return err
	}

	if err := runExp("consistency", func() error {
		res, err := experiments.ConsistencyExperiment()
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		return nil
	}); err != nil {
		return err
	}

	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	if outDir != "" {
		if sweep == nil {
			return fmt.Errorf("-out requires -exp all (or a figure experiment)")
		}
		if err := writeCSVs(outDir, sweep, figures, t62cells, fig67); err != nil {
			return fmt.Errorf("writing CSVs: %w", err)
		}
		fmt.Printf("[CSV series written to %s]\n", outDir)
	}
	return nil
}

// writeCSVs exports the figure series and tables to dir.
func writeCSVs(dir string, sweep []experiments.SweepSeries, figures map[string]experiments.FigureMetric,
	cells []experiments.Table62Cell, classRes *experiments.ClassificationResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, fm := range figures {
		f, err := os.Create(filepath.Join(dir, name+".csv"))
		if err != nil {
			return err
		}
		err = experiments.WriteFigureCSV(f, sweep, fm)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	if cells != nil {
		f, err := os.Create(filepath.Join(dir, "table6.2.csv"))
		if err != nil {
			return err
		}
		err = experiments.WriteTable62CSV(f, cells)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	if classRes != nil {
		f, err := os.Create(filepath.Join(dir, "fig6.7.csv"))
		if err != nil {
			return err
		}
		err = experiments.WriteClassificationCSV(f, classRes)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}
