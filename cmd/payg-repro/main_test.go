package main

import (
	"path/filepath"
	"testing"
)

// The heavy experiments have their own integration tests under
// internal/experiments; these exercise the CLI glue — experiment routing,
// the unknown-experiment error, and CSV emission.

func TestRunSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus generation in short mode")
	}
	for _, exp := range []string{"table6.1", "med-coherence", "consistency"} {
		if err := run(exp, 1, 5, ""); err != nil {
			t.Errorf("run(%q): %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("bogus", 1, 5, ""); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunFigureWithCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in short mode")
	}
	dir := t.TempDir()
	if err := run("fig6.2", 1, 5, dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"fig6.2.csv", "fig6.3.csv"} {
		if _, err := filepath.Glob(filepath.Join(dir, f)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOutRequiresSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus generation in short mode")
	}
	if err := run("table6.1", 1, 5, t.TempDir()); err == nil {
		t.Fatal("-out without a sweep accepted")
	}
}
