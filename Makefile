# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race bench repro fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark per table/figure of the paper, plus per-package benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Text rendering of every experiment (same numbers as `make bench`).
repro:
	$(GO) run ./cmd/payg-repro -exp all

# Short fuzz pass over every hand-written parser.
fuzz:
	$(GO) test -fuzz=FuzzParseLine -fuzztime=30s ./internal/schema
	$(GO) test -fuzz=FuzzReadJSON -fuzztime=30s ./internal/schema
	$(GO) test -fuzz=FuzzTokenizeHTML -fuzztime=30s ./internal/extract
	$(GO) test -fuzz=FuzzParseTriple -fuzztime=30s ./internal/extract
	$(GO) test -fuzz=FuzzSpreadsheet -fuzztime=30s ./internal/extract
	$(GO) test -fuzz=FuzzFromAttribute -fuzztime=30s ./internal/terms

clean:
	$(GO) clean ./...
