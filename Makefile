# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race bench bench-ingest bench-assign bench-query bench-build bench-build-smoke bench-serve loadgen-smoke repro fuzz fuzz-smoke docs-check integration clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark per table/figure of the paper, plus per-package benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Text rendering of every experiment (same numbers as `make bench`).
repro:
	$(GO) run ./cmd/payg-repro -exp all

# Ingest-vs-rebuild cost comparison (writes BENCH_ingest.json).
bench-ingest:
	$(GO) test ./payg -run TestIngestBenchArtifact -bench-artifact=true

# Per-arrival assignment: incremental feature-space extension vs full
# rebuild at n = 300 and 1000, then the per-vectorizer-backend online-path
# rows (term exact vs ngram ANN-pruned). Both steps write BENCH_assign.json;
# the second merges into the first's output.
bench-assign:
	$(GO) test ./internal/ingest -run TestAssignBenchArtifact -bench-assign-artifact=true
	$(GO) test ./payg -run TestAssignBackendBenchArtifact -bench-assign-backends=true

# Repeated-query classification: generation-keyed result cache vs uncached
# Classify, plus the parallel batch path (writes BENCH_query.json).
bench-query:
	$(GO) test ./payg -run TestQueryBenchArtifact -bench-query-artifact=true

# Offline-build scaling sweep: blocked (LSH + sparse HAC) vs exact
# all-pairs at n = {2k, 10k, 50k, 100k} (writes BENCH_build.json).
# The exact arm stops at 10k; expect the full sweep to run for a while.
bench-build:
	PAYG_BENCH_BUILD_FULL=1 $(GO) test ./payg -run TestBuildBenchArtifact -bench-build-artifact=true -timeout 7200s

# CI smoke: smallest size only, artifact discarded outside the repo.
bench-build-smoke:
	$(GO) test ./payg -run TestBuildBenchArtifact -bench-build-artifact=true -bench-build-out=/tmp/BENCH_build.json -timeout 600s

# Serving benchmark: drive a real payg-server with the closed-loop load
# generator through the three headline chaos scenarios — steady state,
# recluster storm, total source blackout (writes BENCH_serve.json).
bench-serve:
	PAYG_INTEGRATION=1 $(GO) test ./internal/integration -run TestServeBenchArtifact -bench-serve-artifact=true -count=1 -timeout 1200s -v

# CI smoke for the load generator: a few seconds of closed-loop traffic
# against an in-process server, plus the report/percentile unit tests.
loadgen-smoke:
	$(GO) test ./internal/loadgen -count=1 -loadgen-secs=5
	$(GO) test ./internal/obs -count=1 -race -run 'TestReservoir|TestConcurrent'

# Short fuzz pass over every hand-written parser. FUZZTIME is overridable;
# CI's fuzz-smoke job uses 10s per target.
FUZZTIME ?= 30s

fuzz:
	$(GO) test -fuzz=FuzzParseLine -fuzztime=$(FUZZTIME) ./internal/schema
	$(GO) test -fuzz=FuzzReadJSON -fuzztime=$(FUZZTIME) ./internal/schema
	$(GO) test -fuzz=FuzzTokenizeHTML -fuzztime=$(FUZZTIME) ./internal/extract
	$(GO) test -fuzz=FuzzParseTriple -fuzztime=$(FUZZTIME) ./internal/extract
	$(GO) test -fuzz=FuzzSpreadsheet -fuzztime=$(FUZZTIME) ./internal/extract
	$(GO) test -fuzz=FuzzFromAttribute -fuzztime=$(FUZZTIME) ./internal/terms

fuzz-smoke:
	$(MAKE) fuzz FUZZTIME=10s

# Documentation verification: diff docs/METRICS.md against the live
# metric registry and check every relative markdown link resolves.
docs-check:
	$(GO) test ./internal/docscheck -count=1

# End-to-end durability and chaos tests against the real payg-server
# binary: SIGKILL mid-stream, restart, assert recovery; leader/follower
# convergence; SLO-gated load scenarios (recluster storm, source
# blackout, leader crash under load). Gated so plain `make test` stays
# hermetic.
integration:
	PAYG_INTEGRATION=1 $(GO) test ./internal/integration -count=1 -timeout 600s

clean:
	$(GO) clean ./...
