// Save/restore: the pay-as-you-go lifecycle across process restarts. All
// expensive work (clustering, exact classifier construction) happens once at
// Build; Save persists the model and Load restores it without redoing that
// work — queries answer identically before and after. On-disk snapshots go
// through SaveFile, which writes a temp file, fsyncs, and renames, so a
// crash mid-save can never leave a truncated snapshot behind.
//
//	go run ./examples/saverestore
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"schemaflow/internal/dataset"
	"schemaflow/payg"
)

func main() {
	corpus := dataset.Union(dataset.DW(1), dataset.SS(2))

	start := time.Now()
	sys, err := payg.Build(corpus, payg.Options{SkipMediation: true})
	if err != nil {
		log.Fatal(err)
	}
	buildTime := time.Since(start)

	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built system over %d schemas in %s; snapshot is %d bytes\n",
		sys.NumSchemas(), buildTime.Round(time.Millisecond), buf.Len())

	start = time.Now()
	restored, err := payg.Load(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored in %s (no re-clustering, no classifier setup)\n",
		time.Since(start).Round(time.Millisecond))

	// The same snapshot, written to disk atomically: SaveFile stages a temp
	// file in the target directory, fsyncs, then renames into place.
	dir, err := os.MkdirTemp("", "saverestore")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "model.snap")
	if err := sys.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(path)
	fmt.Printf("wrote %s atomically (%d bytes)\n\n", filepath.Base(path), fi.Size())

	for _, q := range []string{
		"hotel check in amenities",
		"cve severity patch",
		"grade school district",
	} {
		a := sys.Classify(q)[0]
		b := restored.Classify(q)[0]
		match := "==" // identical scores expected
		if a.Domain != b.Domain || a.LogPosterior != b.LogPosterior {
			match = "MISMATCH"
		}
		fmt.Printf("%-30q original → %3d, restored → %3d  %s\n", q, a.Domain, b.Domain, match)
	}
}
