// Spreadsheets: cluster the synthetic SS corpus (252 spreadsheet schemas
// over 85 overlapping domain labels — the noisier of the thesis' two
// hand-collected sets) and evaluate the clustering against the ground-truth
// labels with the Section 6.1.2 measures.
//
//	go run ./examples/spreadsheets
package main

import (
	"fmt"
	"log"
	"sort"

	"schemaflow/internal/dataset"
	"schemaflow/internal/eval"
	"schemaflow/payg"
)

func main() {
	ss := dataset.SS(2)
	fmt.Printf("SS corpus: %d spreadsheet schemas, %d labels\n\n", len(ss), len(ss.Labels()))

	sys, err := payg.Build(ss, payg.Options{TauCSim: 0.25, SkipMediation: true})
	if err != nil {
		log.Fatal(err)
	}

	// Show the five biggest discovered domains with their dominant labels.
	m := sys.Model()
	dl := eval.LabelDomains(m, ss)
	type row struct {
		id, size int
	}
	var rows []row
	for r := range m.Domains {
		rows = append(rows, row{r, len(m.Domains[r].Cluster)})
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].size > rows[b].size })
	fmt.Println("largest discovered domains:")
	for _, r := range rows[:5] {
		fmt.Printf("  domain %-4d %3d schemas  dominant labels: %v\n",
			r.id, r.size, dl.Labels[r.id])
	}

	// Evaluate against the human labels.
	mt := eval.Evaluate(m, ss)
	fmt.Printf("\nclustering quality at tau_c_sim = 0.25:\n")
	fmt.Printf("  precision        %.3f\n", mt.Precision)
	fmt.Printf("  recall           %.3f\n", mt.Recall)
	fmt.Printf("  fragmentation    %.2f\n", mt.Fragmentation)
	fmt.Printf("  non-homogeneous  %.3f\n", mt.FracNonHomogeneous)
	fmt.Printf("  unclustered      %.3f  (≈25%% of the real SS set was unique)\n", mt.FracUnclustered)

	// Route a few spreadsheet-flavored queries.
	fmt.Println("\nsample keyword queries:")
	for _, q := range []string{
		"student enrollment district principal",
		"song artist genre",
		"team coach league wins",
	} {
		s := sys.Classify(q)[0]
		fmt.Printf("  %-44q → domain %d %v (posterior %.2f)\n",
			q, s.Domain, dl.Labels[s.Domain], s.Posterior)
	}
}
