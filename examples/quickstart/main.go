// Quickstart: cluster a handful of web-source schemas into domains, ask the
// classifier where a keyword query belongs, and inspect the mediated schema
// of the winning domain.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"schemaflow/payg"
)

func main() {
	// The only input the system needs: attribute names of each source.
	schemas := []payg.Schema{
		{Name: "expedia-form", Attributes: []string{
			"departure airport", "destination airport", "departing (mm/dd/yy)",
			"returning (mm/dd/yy)", "airline", "class"}},
		{Name: "cheapflights-form", Attributes: []string{
			"departure", "destination", "departing date", "return date", "travellers"}},
		{Name: "orbitz-form", Attributes: []string{
			"departure city", "destination city", "airline", "ticket class", "price"}},
		{Name: "dblp-table", Attributes: []string{
			"title", "authors", "year of publish", "conference name"}},
		{Name: "citeseer-table", Attributes: []string{
			"paper title", "author", "publication year", "venue", "pages"}},
		{Name: "library-sheet", Attributes: []string{
			"title", "author names", "publisher", "isbn"}},
		{Name: "usedcars-form", Attributes: []string{
			"make", "model", "model year", "mileage", "price", "color"}},
		{Name: "autotrader-form", Attributes: []string{
			"car make", "car model", "year of manufacture", "price", "transmission"}},
	}

	// Build with the thesis' default parameters (τ_t_sim=0.8, τ_c_sim=0.25,
	// avg-Jaccard linkage, θ=0.02).
	sys, err := payg.Build(schemas, payg.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("discovered %d domains from %d schemas:\n\n", sys.NumDomains(), sys.NumSchemas())
	for _, d := range sys.Domains() {
		fmt.Printf("domain %d:\n", d.ID)
		for _, m := range d.Schemas {
			fmt.Printf("  %-22s Pr=%.2f\n", m.Name, m.Prob)
		}
		fmt.Printf("  mediated schema: %v\n\n", d.MediatedAttributes)
	}

	// Route keyword queries to domains (the Chapter 1 example).
	for _, q := range []string{
		"departure Toronto destination Cairo",
		"books authored by Stephen King",
		"red car low mileage",
	} {
		scores := sys.Classify(q)
		best := scores[0]
		fmt.Printf("query %q → domain %d (posterior %.3f)\n", q, best.Domain, best.Posterior)
	}
}
