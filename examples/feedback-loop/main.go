// Feedback loop: the "pay as you go" part of pay-as-you-go integration.
// The system starts from a fully automatic (imperfect) clustering, then
// improves through three feedback channels: an explicit user correction, a
// new source arriving incrementally, and click-driven re-ranking.
//
//	go run ./examples/feedback-loop
package main

import (
	"fmt"
	"log"

	"schemaflow/internal/feedback"
	"schemaflow/payg"
)

func main() {
	// A corpus with a deliberately ambiguous schema: "stamps" lists
	// catalog prices and years like a car listing would, so the automatic
	// clustering may misplace it.
	schemas := []payg.Schema{
		{Name: "usedcars", Attributes: []string{"make", "model", "model year", "price", "mileage"}},
		{Name: "autotrader", Attributes: []string{"car make", "car model", "price", "color"}},
		{Name: "dblp", Attributes: []string{"title", "authors", "publication year", "conference"}},
		{Name: "citeseer", Attributes: []string{"paper title", "author", "year", "venue"}},
		{Name: "stamps", Attributes: []string{"catalog price", "year", "color", "condition"}},
	}
	sys, err := payg.Build(schemas, payg.Options{})
	if err != nil {
		log.Fatal(err)
	}
	show := func(label string, s *payg.System) {
		fmt.Printf("%s: %d domains\n", label, s.NumDomains())
		for _, d := range s.Domains() {
			fmt.Printf("  domain %d:", d.ID)
			for _, m := range d.Schemas {
				fmt.Printf(" %s(%.2f)", m.Name, m.Prob)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	show("initial automatic clustering", sys)

	// --- Explicit feedback: the user isolates the stamp catalog. ---
	res, err := sys.ApplyFeedback(payg.Feedback{Splits: []int{4}})
	if err != nil {
		log.Fatal(err)
	}
	sys = res.System
	show("after user splits 'stamps' into its own domain", sys)

	// --- Incremental growth: a new source arrives later. ---
	sys, domain, err := sys.AddSchema(payg.Schema{
		Name:       "carmax",
		Attributes: []string{"make", "model", "price", "mileage", "transmission"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("new source 'carmax' joined domain %d incrementally\n\n", domain)
	show("after incremental add", sys)

	// --- Implicit feedback: clicks sharpen an ambiguous ranking. ---
	clicks := feedback.NewClickLog(sys.NumDomains())
	query := "price year color" // ambiguous between cars and stamps
	before := sys.Classify(query)
	fmt.Printf("query %q before clicks: domain %d (posterior %.2f)\n",
		query, before[0].Domain, before[0].Posterior)
	// Users who issue this query keep clicking into the stamps domain.
	stampsDomain := before[1].Domain
	for i := 0; i < 50; i++ {
		clicks.Record(stampsDomain)
	}
	after := clicks.Rerank(before)
	fmt.Printf("query %q after 50 clicks on domain %d: domain %d (posterior %.2f)\n",
		query, stampsDomain, after[0].Domain, after[0].Posterior)
}
