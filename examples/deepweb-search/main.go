// Deep-web search: the thesis' typical use case (Section 3.3) end to end.
//
// A user poses a keyword query over many deep-web sources. The system (1)
// routes the query to the most relevant domains, (2) presents the winning
// domain's mediated schema as a structured query interface, and (3) executes
// a structured query, dispatching it to every source in the domain, mapping
// raw tuples through probabilistic mappings, and merging them into a single
// result set ranked by tuple probability.
//
//	go run ./examples/deepweb-search
package main

import (
	"fmt"
	"log"
	"strings"

	"schemaflow/payg"
)

func main() {
	schemas := []payg.Schema{
		{Name: "expedia", Attributes: []string{"departure airport", "destination airport", "airline", "class"}},
		{Name: "flyaway", Attributes: []string{"departure", "destination", "airline", "fare"}},
		{Name: "govtravel", Attributes: []string{"departure city", "destination city", "carrier", "ticket class"}},
		{Name: "dblp", Attributes: []string{"title", "authors", "year of publish", "conference name"}},
		{Name: "citeseer", Attributes: []string{"paper title", "author", "publication year", "venue"}},
	}

	sys, err := payg.Build(schemas, payg.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Data extensions behind the sources. In reality these sit behind web
	// forms; here they are in-memory tables.
	sources := []payg.Source{
		{Schema: schemas[0], Tuples: []payg.Tuple{
			{"YYZ", "CAI", "AirNorth", "economy"},
			{"YYZ", "LIM", "SkyWays", "business"},
		}},
		{Schema: schemas[1], Tuples: []payg.Tuple{
			{"YYZ", "CAI", "AirNorth", "780"},
			{"OSL", "CAI", "BlueJet", "640"},
		}},
		{Schema: schemas[2], Tuples: []payg.Tuple{
			{"Toronto", "Cairo", "TransPolar", "first"},
		}},
		{Schema: schemas[3]},
		{Schema: schemas[4]},
	}

	// Step 1: the keyword query is classified into domains.
	keyword := "departure Toronto destination Cairo"
	scores := sys.Classify(keyword)
	fmt.Printf("keyword query: %q\n\nrelevant domains (best first):\n", keyword)
	for _, s := range scores {
		fmt.Printf("  domain %d  posterior %.3f\n", s.Domain, s.Posterior)
	}
	best := scores[0].Domain

	// Step 2: the winning domain's mediated schema is the structured query
	// interface presented to the user.
	attrs, err := sys.MediatedAttributes(best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstructured query interface (mediated schema of domain %d):\n  %s\n",
		best, strings.Join(attrs, ", "))

	// Step 3: the user poses a structured query over the mediated schema.
	pick := func(sub string) string {
		for _, a := range attrs {
			if strings.Contains(a, sub) {
				return a
			}
		}
		log.Fatalf("no mediated attribute matching %q", sub)
		return ""
	}
	dep, dst, air := pick("departure"), pick("destination"), pick("airline")

	q := payg.Query{
		Select: []string{dep, dst, air},
		Where:  map[string]string{dep: "YYZ"},
	}
	res, err := sys.Execute(best, q, sources)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSELECT %s, %s, %s WHERE %s = 'YYZ':\n", dep, dst, air, dep)
	for _, r := range res {
		fmt.Printf("  %-6s %-6s %-10s Pr=%.3f  (from %s)\n",
			r.Values[0], r.Values[1], r.Values[2], r.Prob, strings.Join(r.Sources, "+"))
	}
}
