// RDF sources: the conclusion's "other types of data sources" extension.
// Schemas are extracted from an N-Triples dump (one schema per rdf:type,
// attribute names from predicate local names), mixed with conventional
// web-form schemas, and clustered into domains together.
//
//	go run ./examples/rdf-sources
package main

import (
	"fmt"
	"log"
	"strings"

	"schemaflow/payg"
)

const dump = `
# A FOAF-style people dump.
<http://ex.org/p1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://xmlns.com/foaf/0.1/Person> .
<http://ex.org/p1> <http://xmlns.com/foaf/0.1/firstName> "Alice" .
<http://ex.org/p1> <http://xmlns.com/foaf/0.1/familyName> "Okafor" .
<http://ex.org/p1> <http://xmlns.com/foaf/0.1/mbox> <mailto:alice@ex.org> .
<http://ex.org/p1> <http://xmlns.com/foaf/0.1/phone> "555-0101" .
<http://ex.org/p2> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://xmlns.com/foaf/0.1/Person> .
<http://ex.org/p2> <http://xmlns.com/foaf/0.1/homepage> <http://ex.org/~s> .
# A bibliographic dump.
<http://ex.org/b1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://purl.org/ontology/bibo/Article> .
<http://ex.org/b1> <http://purl.org/dc/terms/title> "A Paper" .
<http://ex.org/b1> <http://purl.org/dc/terms/creator> "Someone" .
<http://ex.org/b1> <http://purl.org/ontology/bibo/pageStart> "11" .
<http://ex.org/b1> <http://purl.org/ontology/bibo/publicationYear> "2009" .
`

func main() {
	rdfSchemas, err := payg.ExtractNTriples(strings.NewReader(dump), "dump.nt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("extracted from RDF:")
	for _, s := range rdfSchemas {
		fmt.Printf("  %-18s {%s}\n", s.Name, strings.Join(s.Attributes, ", "))
	}

	// Mix with conventional web-form schemas from the same two domains.
	schemas := append(rdfSchemas,
		payg.Schema{Name: "faculty-form", Attributes: []string{"first name", "family name", "phone", "email"}},
		payg.Schema{Name: "dblp-table", Attributes: []string{"title", "creator", "publication year", "pages"}},
	)
	sys, err := payg.Build(schemas, payg.Options{TauCSim: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclustered %d sources into %d domains:\n", sys.NumSchemas(), sys.NumDomains())
	for _, d := range sys.Domains() {
		var names []string
		for _, m := range d.Schemas {
			names = append(names, m.Name)
		}
		fmt.Printf("  domain %d: %s\n", d.ID, strings.Join(names, ", "))
	}

	best := sys.Classify("family name phone")[0]
	fmt.Printf("\nquery \"family name phone\" → domain %d (posterior %.2f)\n", best.Domain, best.Posterior)
}
