package payg

import (
	"container/list"
	"sort"
	"strings"
	"sync"
)

// queryCache is a generation-keyed LRU over ranked classification results.
// Keys are canonicalized query term sets; each entry remembers the serving
// generation it was computed against, and the manager's atomic-swap
// generation counter makes invalidation free: an entry whose generation is
// not the current one is a miss (and is dropped on sight), so a feedback
// apply or recluster swap can never serve a stale ranking. There is no
// flush-on-swap — stale entries age out through lookups and LRU pressure.
type queryCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List               // front = most recently used
	items map[string]*list.Element // key → element holding *cacheEntry
}

type cacheEntry struct {
	key    string
	gen    int
	scores []Score
}

// newQueryCache returns a cache bounded to capacity entries, or nil when
// capacity <= 0 (caching disabled; the nil cache is checked at call sites).
func newQueryCache(capacity int) *queryCache {
	if capacity <= 0 {
		return nil
	}
	return &queryCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// cacheKey canonicalizes a query's extracted term set: classification
// depends only on the set of canonical terms (QueryVector is a union), so
// keyword order and duplicates must not fragment the cache. Terms never
// contain control bytes, so 0x1F is a safe joiner.
func cacheKey(terms []string) string {
	if len(terms) > 1 && !sort.StringsAreSorted(terms) {
		terms = append([]string(nil), terms...)
		sort.Strings(terms)
	}
	return strings.Join(terms, "\x1f")
}

// get returns a copy of the cached ranking for key at the given serving
// generation. A present entry from another generation counts as a miss and
// is evicted. The returned slice is the caller's to keep.
func (c *queryCache) get(key string, gen int) ([]Score, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		mQueryCacheMisses.Inc()
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.gen != gen {
		c.order.Remove(el)
		delete(c.items, key)
		mQueryCacheMisses.Inc()
		mQueryCacheEvictions.Inc()
		mQueryCacheSize.Set(float64(len(c.items)))
		return nil, false
	}
	c.order.MoveToFront(el)
	mQueryCacheHits.Inc()
	out := make([]Score, len(ent.scores))
	copy(out, ent.scores)
	return out, true
}

// put stores a copy of the ranking computed against the given generation,
// evicting least-recently-used entries to stay within capacity.
func (c *queryCache) put(key string, gen int, scores []Score) {
	stored := make([]Score, len(scores))
	copy(stored, scores)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.gen = gen
		ent.scores = stored
		c.order.MoveToFront(el)
		return
	}
	for len(c.items) >= c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).key)
		mQueryCacheEvictions.Inc()
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, gen: gen, scores: stored})
	mQueryCacheSize.Set(float64(len(c.items)))
}

// len reports the current entry count (for tests).
func (c *queryCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}
