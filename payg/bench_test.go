package payg

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"

	"schemaflow/internal/dataset"
)

// benchArtifact gates TestIngestBenchArtifact, which renders the
// ingest-vs-rebuild benchmark pair to BENCH_ingest.json at the repository
// root (make bench-ingest).
var benchArtifact = flag.Bool("bench-artifact", false, "write BENCH_ingest.json from the ingest benchmarks")

// benchCorpus returns the DW stand-in corpus split into a base set and one
// held-out newcomer for the ingest path to assign. The newcomer comes from
// a populous label (hotels) so assignment succeeds; the tail of the corpus
// is unique singleton schemas that would arrive as "fresh".
func benchCorpus() (base []Schema, newcomer Schema) {
	set := dataset.DW(1)
	newcomer = set[1] // dw-hotels-01
	base = append(append([]Schema{}, set[:1]...), set[2:]...)
	return base, newcomer
}

func benchSystem(b *testing.B) *System {
	b.Helper()
	base, _ := benchCorpus()
	sys, err := Build(base, Options{})
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkIngest measures the online path: assigning one arriving schema
// to the existing domains (feature vector vs centroids, Algorithm 3 gates)
// without touching the clustering or classifier tables. Compare against
// BenchmarkFullRebuild — the cost the journal+drift trigger amortizes.
func BenchmarkIngest(b *testing.B) {
	sys := benchSystem(b)
	_, newcomer := benchCorpus()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := sys.Ingest(newcomer)
		if err != nil {
			b.Fatal(err)
		}
		if a.Fresh {
			b.Fatal("newcomer unexpectedly fresh")
		}
	}
}

// BenchmarkFullRebuild measures building the whole system from scratch over
// the same corpus plus the newcomer — what a synchronous AddSchema per
// arrival would pay, and what one background recluster pays for a whole
// batch of journaled arrivals.
func BenchmarkFullRebuild(b *testing.B) {
	base, newcomer := benchCorpus()
	union := append(append([]Schema{}, base...), newcomer)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(union, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestIngestBenchArtifact runs the pair via testing.Benchmark and writes the
// comparison to BENCH_ingest.json (repo root) when -bench-artifact is set:
//
//	go test ./payg -run TestIngestBenchArtifact -bench-artifact=true
func TestIngestBenchArtifact(t *testing.T) {
	if !*benchArtifact {
		t.Skip("set -bench-artifact to regenerate BENCH_ingest.json")
	}
	ingest := testing.Benchmark(BenchmarkIngest)
	rebuild := testing.Benchmark(BenchmarkFullRebuild)
	type row struct {
		Name        string `json:"name"`
		Iterations  int    `json:"iterations"`
		NsPerOp     int64  `json:"ns_per_op"`
		AllocsPerOp int64  `json:"allocs_per_op"`
		BytesPerOp  int64  `json:"bytes_per_op"`
	}
	artifact := struct {
		Description string  `json:"description"`
		GoVersion   string  `json:"go_version"`
		Corpus      string  `json:"corpus"`
		Ingest      row     `json:"ingest"`
		FullRebuild row     `json:"full_rebuild"`
		Speedup     float64 `json:"speedup"`
	}{
		Description: "Online ingest (assign one schema to existing domains) vs full model rebuild over the same corpus",
		GoVersion:   runtime.Version(),
		Corpus:      "DW stand-in (63 schemas, seed 1)",
		Ingest: row{
			Name:        "BenchmarkIngest",
			Iterations:  ingest.N,
			NsPerOp:     ingest.NsPerOp(),
			AllocsPerOp: ingest.AllocsPerOp(),
			BytesPerOp:  ingest.AllocedBytesPerOp(),
		},
		FullRebuild: row{
			Name:        "BenchmarkFullRebuild",
			Iterations:  rebuild.N,
			NsPerOp:     rebuild.NsPerOp(),
			AllocsPerOp: rebuild.AllocsPerOp(),
			BytesPerOp:  rebuild.AllocedBytesPerOp(),
		},
		Speedup: float64(rebuild.NsPerOp()) / float64(ingest.NsPerOp()),
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../BENCH_ingest.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("ingest %v vs rebuild %v (%.0fx)", ingest, rebuild, artifact.Speedup)
}
