package payg

import (
	"strings"
	"testing"
)

func TestApplyFeedbackMove(t *testing.T) {
	sys := build(t, Options{})
	bibDomain := sys.Model().Clustering.Assign[3]

	res, err := sys.ApplyFeedback(Feedback{Moves: []Move{{Schema: 0, Domain: bibDomain}}})
	if err != nil {
		t.Fatal(err)
	}
	newBib := res.DomainMap[bibDomain]
	if newBib < 0 {
		t.Fatal("bibliography domain vanished")
	}
	if got := res.System.Model().Clustering.Assign[0]; got != newBib {
		t.Fatalf("flights schema in domain %d, want %d", got, newBib)
	}
	// The corrected system is fully functional: classifier answers, and
	// pinned membership is certain.
	if len(res.System.Classify("title author")) == 0 {
		t.Fatal("corrected system cannot classify")
	}
	for _, d := range res.System.Domains() {
		for _, m := range d.Schemas {
			if m.Name == "flights" && d.ID == newBib && m.Prob != 1 {
				t.Fatalf("moved schema prob = %v, want 1", m.Prob)
			}
		}
	}
	// Original untouched.
	if sys.Model().Clustering.Assign[0] == bibDomain {
		t.Fatal("original system mutated")
	}
}

func TestApplyFeedbackMergeAndSplit(t *testing.T) {
	sys := build(t, Options{})
	travel := sys.Model().Clustering.Assign[0]
	bib := sys.Model().Clustering.Assign[3]

	res, err := sys.ApplyFeedback(Feedback{
		Merges: [][2]int{{travel, bib}},
		Splits: []int{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DomainMap[travel] != res.DomainMap[bib] {
		t.Fatal("merge did not unify domain ids")
	}
	fresh, ok := res.NewDomainOf[2]
	if !ok {
		t.Fatal("split domain not reported")
	}
	members := res.System.Model().Clustering.Members[fresh]
	if len(members) != 1 || members[0] != 2 {
		t.Fatalf("split members = %v", members)
	}
}

func TestApplyFeedbackValidation(t *testing.T) {
	sys := build(t, Options{})
	if _, err := sys.ApplyFeedback(Feedback{Moves: []Move{{Schema: 99, Domain: 0}}}); err == nil {
		t.Fatal("bad move accepted")
	}
	if _, err := sys.ApplyFeedback(Feedback{Merges: [][2]int{{0, 0}}}); err == nil {
		t.Fatal("self-merge accepted")
	}
}

func TestAddSchema(t *testing.T) {
	sys := build(t, Options{})
	bibDomain := sys.Model().Clustering.Assign[3]

	grown, domain, err := sys.AddSchema(Schema{
		Name:       "newlib",
		Attributes: []string{"title", "authors", "publisher", "publication year"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if domain != bibDomain {
		t.Fatalf("new bibliography source joined domain %d, want %d", domain, bibDomain)
	}
	if grown.NumSchemas() != sys.NumSchemas()+1 {
		t.Fatal("schema count unchanged")
	}
	// The grown system classifies with the new vocabulary available.
	scores := grown.Classify("publisher publication")
	if scores[0].Domain != domain {
		t.Fatalf("grown classifier routes to %d, want %d", scores[0].Domain, domain)
	}
	// Mediated schema of the domain includes the new source's attributes.
	attrs, err := grown.MediatedAttributes(domain)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(attrs, " "), "publisher") {
		t.Fatalf("mediated schema lacks new attribute: %v", attrs)
	}
}

func TestAddSchemaInvalid(t *testing.T) {
	sys := build(t, Options{})
	if _, _, err := sys.AddSchema(Schema{Name: "empty"}); err == nil {
		t.Fatal("invalid schema accepted")
	}
}

func TestExtractFacades(t *testing.T) {
	forms, err := ExtractForms(strings.NewReader(
		`<form id="f"><label for="a">Departure</label><input id="a" name="dep"></form>`), "x")
	if err != nil || len(forms) != 1 || forms[0].Attributes[0] != "Departure" {
		t.Fatalf("ExtractForms: %v %v", forms, err)
	}
	tables, err := ExtractTables(strings.NewReader(
		`<table><tr><th>Make</th><th>Model</th></tr></table>`), "x")
	if err != nil || len(tables) != 1 || len(tables[0].Attributes) != 2 {
		t.Fatalf("ExtractTables: %v %v", tables, err)
	}
	sheets, err := ExtractSpreadsheet(strings.NewReader("song,artist\na,b\n"), "x")
	if err != nil || len(sheets) != 1 {
		t.Fatalf("ExtractSpreadsheet: %v %v", sheets, err)
	}
	nt, err := ExtractNTriples(strings.NewReader(
		`<http://e/s> <http://e/firstName> "A" .`), "x")
	if err != nil || len(nt) != 1 || nt[0].Attributes[0] != "first name" {
		t.Fatalf("ExtractNTriples: %v %v", nt, err)
	}
}

func TestExtractThenBuildPipeline(t *testing.T) {
	// End-to-end: extract schemas from raw sources, then build and query.
	html := `
<form id="flights">
  <label for="d">Departure airport</label><input id="d" name="dep">
  <label for="a">Destination airport</label><input id="a" name="dst">
  <select name="airline"></select>
</form>`
	forms, err := ExtractForms(strings.NewReader(html), "expedia")
	if err != nil {
		t.Fatal(err)
	}
	sheets, err := ExtractSpreadsheet(strings.NewReader("title,authors,publication year\nA,B,2009\n"), "papers.csv")
	if err != nil {
		t.Fatal(err)
	}
	schemas := append(forms, sheets...)
	schemas = append(schemas,
		Schema{Name: "more-flights", Attributes: []string{"departure", "destination", "airline", "fare"}},
		Schema{Name: "more-papers", Attributes: []string{"paper title", "author", "year"}},
	)
	sys, err := Build(schemas, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumDomains() != 2 {
		t.Fatalf("extracted corpus → %d domains, want 2", sys.NumDomains())
	}
	top := sys.Classify("departure destination")[0]
	flightsDomain := sys.Model().Clustering.Assign[0]
	if top.Domain != flightsDomain {
		t.Fatalf("query routed to %d, want %d", top.Domain, flightsDomain)
	}
}
