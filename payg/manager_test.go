package payg

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"schemaflow/internal/engine"
)

// newcomerSchemas are schemas that arrive online: two that belong to the
// demo corpus' domains and one that matches nothing.
func newcomerSchemas() []Schema {
	return []Schema{
		{Name: "charters", Attributes: []string{"departure airport", "destination city", "airline", "price"}},
		{Name: "theses", Attributes: []string{"title", "authors", "publication year", "university"}},
		{Name: "minerals", Attributes: []string{"specimen hardness", "crystal lattice", "refractive index"}},
	}
}

func demoSources(set []Schema) []TupleSource {
	sources := make([]TupleSource, len(set))
	for i, s := range set {
		row := make(Tuple, len(s.Attributes))
		for k := range row {
			row[k] = fmt.Sprintf("%s-val-%d", s.Name, k)
		}
		sources[i] = Source{Schema: s, Tuples: []Tuple{row}}
	}
	return sources
}

func newManager(t *testing.T, sources []TupleSource, opts ManagerOptions) *Manager {
	t.Helper()
	sys := build(t, Options{})
	mgr, err := NewManager(sys, sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	return mgr
}

func TestManagerIngestAssignsWithoutMutatingServing(t *testing.T) {
	mgr := newManager(t, nil, ManagerOptions{DriftThreshold: -1})
	travel := mgr.System().Model().Clustering.Assign[0]

	res, err := mgr.Ingest(newcomerSchemas()[0]) // clear travel schema
	if err != nil {
		t.Fatal(err)
	}
	a := res.Assignment
	if a.Fresh {
		t.Fatalf("clear travel schema marked fresh (best sim %v)", a.BestSim)
	}
	if len(a.Domains) != 1 || a.Domains[0].Domain != travel {
		t.Fatalf("assignment %+v, want single membership in domain %d", a.Domains, travel)
	}
	if a.Domains[0].Prob < 0.25 {
		t.Fatalf("probability %v below the τ_c_sim gate", a.Domains[0].Prob)
	}
	if res.Pending != 1 {
		t.Fatalf("pending %d, want 1", res.Pending)
	}
	if got := mgr.System().NumSchemas(); got != 6 {
		t.Fatalf("serving system grew to %d schemas without a rebuild", got)
	}

	// A second, unrelated arrival is fresh but must not disturb serving.
	res, err = mgr.Ingest(newcomerSchemas()[2])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Assignment.Fresh {
		t.Fatalf("mineral schema not fresh: %+v", res.Assignment.Domains)
	}
	if res.Pending != 2 {
		t.Fatalf("pending %d, want 2", res.Pending)
	}
}

func TestManagerIngestBoundarySchema(t *testing.T) {
	// Wide θ lets a schema straddling travel and bibliography join both.
	sys, err := Build(demoSchemas(), Options{Theta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(sys, nil, ManagerOptions{DriftThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	res, err := mgr.Ingest(Schema{
		Name:       "travel-guides",
		Attributes: []string{"departure airport", "destination city", "airline", "title", "author", "publisher"},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Assignment
	if a.Fresh || len(a.Domains) < 2 {
		t.Fatalf("boundary schema not multi-domain: fresh=%v domains=%+v", a.Fresh, a.Domains)
	}
	sum := 0.0
	for _, d := range a.Domains {
		sum += d.Prob
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("boundary probabilities sum to %v, want 1", sum)
	}
}

func TestManagerDriftTriggersBackgroundRebuild(t *testing.T) {
	mgr := newManager(t, nil, ManagerOptions{DriftThreshold: 0.5, DriftWindow: 4, DriftMinSamples: 2})
	fresh := []Schema{
		{Name: "m1", Attributes: []string{"specimen hardness", "crystal lattice"}},
		{Name: "m2", Attributes: []string{"chlorophyll density", "leaf span"}},
	}
	triggered := false
	for _, sch := range fresh {
		res, err := mgr.Ingest(sch)
		if err != nil {
			t.Fatal(err)
		}
		triggered = triggered || res.RebuildTriggered
	}
	if !triggered {
		t.Fatalf("two fresh arrivals did not trigger a rebuild: %+v", mgr.Status())
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		st := mgr.Status()
		if !st.Rebuilding && st.Pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebuild did not finish: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := mgr.Status()
	if st.Schemas != 8 {
		t.Fatalf("serving %d schemas after rebuild, want 8", st.Schemas)
	}
	if st.Rebuilds != 1 {
		t.Fatalf("rebuilds = %d, want 1", st.Rebuilds)
	}
	// The once-fresh schemas are now first-class domain members.
	for i := 6; i < 8; i++ {
		if len(mgr.System().Model().DomainsOf(i)) == 0 {
			t.Fatalf("ingested schema %d has no domain after rebuild", i)
		}
	}
}

// TestManagerConcurrentTrafficDuringRebuild is the acceptance check:
// classify/query traffic runs (under -race) while schemas are ingested and
// a rebuild completes; reads never block or fail, and the post-swap system
// is indistinguishable from a from-scratch Build on the union.
func TestManagerConcurrentTrafficDuringRebuild(t *testing.T) {
	base := demoSchemas()
	sys, err := Build(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(sys, demoSources(base), ManagerOptions{DriftThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	stop := make(chan struct{})
	errc := make(chan error, 8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got := mgr.System().Classify("departure airline price"); len(got) == 0 {
					errc <- fmt.Errorf("classify returned no scores")
					return
				}
				ex := mgr.Executor()
				attrs, err := ex.System().MediatedAttributes(0)
				if err != nil || len(attrs) == 0 {
					errc <- fmt.Errorf("mediated attributes: %v", err)
					return
				}
				if _, err := ex.Execute(context.Background(), 0, Query{Select: attrs[:1]}); err != nil {
					errc <- fmt.Errorf("execute: %v", err)
					return
				}
			}
		}()
	}

	newcomers := newcomerSchemas()
	for _, sch := range newcomers {
		if _, err := mgr.Ingest(sch); err != nil {
			t.Fatal(err)
		}
	}
	if err := mgr.Recluster(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	union := append(append([]Schema{}, base...), newcomers...)
	want, err := Build(union, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := mgr.System()
	if got.NumSchemas() != want.NumSchemas() || got.NumDomains() != want.NumDomains() {
		t.Fatalf("post-swap %d schemas / %d domains, from-scratch %d / %d",
			got.NumSchemas(), got.NumDomains(), want.NumSchemas(), want.NumDomains())
	}
	for i := range union {
		g, w := got.Model().DomainsOf(i), want.Model().DomainsOf(i)
		if len(g) != len(w) {
			t.Fatalf("schema %d: memberships %+v vs from-scratch %+v", i, g, w)
		}
		for k := range g {
			if g[k].Schema != w[k].Schema || math.Abs(g[k].Prob-w[k].Prob) > 1e-12 {
				t.Fatalf("schema %d membership %d: %+v vs %+v", i, k, g[k], w[k])
			}
		}
	}
	for _, q := range []string{
		"departure airline price",
		"title author publication year",
		"crystal specimen hardness",
		"telescope aperture",
	} {
		g, w := got.Classify(q), want.Classify(q)
		if len(g) != len(w) {
			t.Fatalf("query %q: %d scores vs %d", q, len(g), len(w))
		}
		for k := range g {
			if g[k].Domain != w[k].Domain || math.Abs(g[k].Posterior-w[k].Posterior) > 1e-12 {
				t.Fatalf("query %q rank %d: got {%d %v}, from-scratch {%d %v}",
					q, k, g[k].Domain, g[k].Posterior, w[k].Domain, w[k].Posterior)
			}
		}
	}
	// The executor serves the new generation, including the new schemas'
	// (empty) sources.
	if mgr.Executor().System() != got {
		t.Fatal("executor not rebound to the swapped system")
	}
}

func TestManagerRebuildCarriesBreakerState(t *testing.T) {
	base := demoSchemas()
	sys, err := Build(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	flake := engine.NewFlakeSource(base[0].Name, nil, 1)
	flake.SetDown(true)
	sources := demoSources(base)
	sources[0] = flake
	policy := Policy{BreakerThreshold: 1, BreakerCooldown: time.Hour}
	mgr, err := NewManager(sys, sources, ManagerOptions{Policy: policy, DriftThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	domainOf := func(s *System) int { return s.Model().Clustering.Assign[0] }
	runQuery := func() {
		t.Helper()
		ex := mgr.Executor()
		d := domainOf(ex.System())
		attrs, err := ex.System().MediatedAttributes(d)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ex.Execute(context.Background(), d, Query{Select: attrs[:1]}); err != nil {
			t.Fatal(err)
		}
	}
	runQuery() // the down source fails once; threshold 1 opens its breaker
	if calls := flake.Calls(); calls != 1 {
		t.Fatalf("flake fetched %d times, want 1", calls)
	}

	if _, err := mgr.Ingest(newcomerSchemas()[0]); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Recluster(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Post-swap, the breaker must still be open: the source is skipped,
	// not re-fetched.
	runQuery()
	if calls := flake.Calls(); calls != 1 {
		t.Fatalf("flake fetched %d times after swap, want 1 (breaker state lost)", calls)
	}
}

func TestManagerFeedbackSwapSerializesWithIngestion(t *testing.T) {
	mgr := newManager(t, nil, ManagerOptions{DriftThreshold: -1})
	// Move "oddball" (index 5) into the travel domain via feedback.
	travel := mgr.System().Model().Clustering.Assign[0]
	res, err := mgr.ApplyFeedback(Feedback{Moves: []Move{{Schema: 5, Domain: travel}}})
	if err != nil {
		t.Fatal(err)
	}
	if mgr.System() != res.System {
		t.Fatal("feedback result not swapped in")
	}
	// Ingestion still works over the corrected base.
	if _, err := mgr.Ingest(newcomerSchemas()[0]); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Recluster(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := mgr.System().NumSchemas(); got != 7 {
		t.Fatalf("serving %d schemas, want 7", got)
	}
}

func TestManagerSaveLoadKeepsPendingJournal(t *testing.T) {
	mgr := newManager(t, nil, ManagerOptions{DriftThreshold: -1})
	for _, sch := range newcomerSchemas()[:2] {
		if _, err := mgr.Ingest(sch); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := mgr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	mgr2, err := LoadManager(&buf, nil, ManagerOptions{DriftThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	if st := mgr2.Status(); st.Pending != 2 {
		t.Fatalf("restored pending %d, want 2", st.Pending)
	}

	// Both managers recluster to the same system.
	if err := mgr.Recluster(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := mgr2.Recluster(context.Background()); err != nil {
		t.Fatal(err)
	}
	a, b := mgr.System(), mgr2.System()
	if a.NumSchemas() != b.NumSchemas() || a.NumDomains() != b.NumDomains() {
		t.Fatalf("diverged: %d/%d vs %d/%d schemas/domains",
			a.NumSchemas(), a.NumDomains(), b.NumSchemas(), b.NumDomains())
	}
	for _, q := range []string{"departure airline", "title author", "telescope"} {
		ga, gb := a.Classify(q), b.Classify(q)
		for k := range ga {
			if ga[k].Domain != gb[k].Domain || math.Abs(ga[k].Posterior-gb[k].Posterior) > 1e-12 {
				t.Fatalf("query %q diverged after restore: %+v vs %+v", q, ga[k], gb[k])
			}
		}
	}
}

func TestIngestedSystemSnapshotRoundTrip(t *testing.T) {
	mgr := newManager(t, nil, ManagerOptions{DriftThreshold: -1})
	for _, sch := range newcomerSchemas() {
		if _, err := mgr.Ingest(sch); err != nil {
			t.Fatal(err)
		}
	}
	if err := mgr.Recluster(context.Background()); err != nil {
		t.Fatal(err)
	}
	sys := mgr.System()

	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumSchemas() != sys.NumSchemas() || loaded.NumDomains() != sys.NumDomains() {
		t.Fatalf("loaded %d/%d, want %d/%d",
			loaded.NumSchemas(), loaded.NumDomains(), sys.NumSchemas(), sys.NumDomains())
	}
	for i := 0; i < sys.NumSchemas(); i++ {
		g, w := loaded.Model().DomainsOf(i), sys.Model().DomainsOf(i)
		if len(g) != len(w) {
			t.Fatalf("schema %d memberships %+v vs %+v", i, g, w)
		}
		for k := range g {
			if g[k] != w[k] {
				t.Fatalf("schema %d membership %d: %+v vs %+v", i, k, g[k], w[k])
			}
		}
	}
	for _, q := range []string{"departure airline", "title author year", "crystal specimen"} {
		g, w := loaded.Classify(q), sys.Classify(q)
		for k := range g {
			if g[k].Domain != w[k].Domain || math.Abs(g[k].Posterior-w[k].Posterior) > 1e-12 {
				t.Fatalf("query %q: loaded %+v vs saved %+v", q, g[k], w[k])
			}
		}
	}
}

func TestManagerCloseCancelsInflightRebuild(t *testing.T) {
	mgr := newManager(t, nil, ManagerOptions{DriftThreshold: -1})
	if _, err := mgr.Ingest(newcomerSchemas()[0]); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A canceled waiter returns promptly; the flight itself is reaped by
	// Close without deadlock.
	if err := mgr.Recluster(ctx); err == nil {
		t.Log("rebuild finished before cancellation — acceptable")
	}
	mgr.Close()
	if _, err := mgr.Ingest(newcomerSchemas()[1]); err == nil {
		t.Fatal("ingest after Close succeeded")
	}
}
