package payg

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// benchQueryArtifact gates TestQueryBenchArtifact, which renders the
// cached-vs-uncached classification benchmark to BENCH_query.json at the
// repository root (make bench-query).
var benchQueryArtifact = flag.Bool("bench-query-artifact", false, "write BENCH_query.json from the Classify benchmarks")

// queryBenchStems are the domain anchors of the synthetic query corpus: one
// per template, chosen long and mutually dissimilar so LCS at τ = 0.8 never
// bridges two templates and the clustering keeps them as separate domains.
var queryBenchStems = []string{
	"aircraft", "vessel", "warehouse", "invoice", "patient",
	"vehicle", "professor", "satellite", "molecule", "tournament",
	"orchestra", "reservoir", "manuscript", "telescope", "cathedral",
	"glacier", "vineyard", "submarine", "locomotive", "observatory",
	"laboratory", "peninsula", "archipelago", "monastery", "lighthouse",
	"refinery", "plantation", "expedition", "carnival", "symphony",
	"aquarium", "boulevard", "catamaran", "dirigible", "escalator",
	"fortress", "gymnasium", "hurricane", "iceberg", "jacaranda",
	"kaleidoscope", "labyrinth", "metropolis", "nebula", "obelisk",
	"pagoda", "quarry", "rotunda", "sanctuary", "terrarium",
}

var queryBenchFields = []string{
	"identifier", "name", "created", "updated", "price", "status", "category", "owner",
}

// queryBenchSet generates a deterministic n-schema corpus over
// len(queryBenchStems) domain templates. Attribute names glue stem and
// field into a single term ("aircraftprice") so every template owns a
// disjoint vocabulary slice; randomly dropped fields plus suffixed variants
// fatten the vocabulary the way real per-source schemas do.
func queryBenchSet(n int, seed int64) []Schema {
	rng := rand.New(rand.NewSource(seed))
	set := make([]Schema, 0, n)
	for i := 0; i < n; i++ {
		stem := queryBenchStems[i%len(queryBenchStems)]
		var attrs []string
		for _, f := range queryBenchFields {
			if rng.Intn(10) < 7 {
				attrs = append(attrs, stem+f)
			}
		}
		for k := 0; k < 2; k++ {
			f := queryBenchFields[rng.Intn(len(queryBenchFields))]
			attrs = append(attrs, fmt.Sprintf("%s%sv%02d", stem, f, rng.Intn(40)))
		}
		if len(attrs) == 0 {
			attrs = []string{stem + queryBenchFields[0]}
		}
		set = append(set, Schema{Name: fmt.Sprintf("q%04d", i), Attributes: attrs})
	}
	return set
}

// queryBenchWorkload is the repeated-query stream: width distinct queries,
// each two or three known template terms, cycled by the benchmarks so every
// query past the first pass is a cache hit.
func queryBenchWorkload(width int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]string, 0, width)
	for i := 0; i < width; i++ {
		stem := queryBenchStems[rng.Intn(len(queryBenchStems))]
		terms := []string{
			stem + queryBenchFields[rng.Intn(len(queryBenchFields))],
			stem + queryBenchFields[rng.Intn(len(queryBenchFields))],
		}
		if i%2 == 0 {
			other := queryBenchStems[rng.Intn(len(queryBenchStems))]
			terms = append(terms, other+queryBenchFields[rng.Intn(len(queryBenchFields))])
		}
		qs = append(qs, strings.Join(terms, " "))
	}
	return qs
}

const queryBenchN = 1000

var (
	queryBenchOnce sync.Once
	queryBenchSys  *System
	queryBenchErr  error
)

// queryBenchSystem builds the n-schema system once and shares it across
// the Classify benchmarks — the model is read-only on the query path, so
// sharing is safe and keeps `go test -bench` setup off every benchmark.
func queryBenchSystem(tb testing.TB) *System {
	tb.Helper()
	queryBenchOnce.Do(func() {
		queryBenchSys, queryBenchErr = Build(queryBenchSet(queryBenchN, 1), Options{SkipMediation: true})
	})
	if queryBenchErr != nil {
		tb.Fatal(queryBenchErr)
	}
	return queryBenchSys
}

// BenchmarkClassifyCached measures the Manager query path on a repeated
// workload: after one warm pass every op is a generation-checked cache hit
// (canonical-key lookup plus a defensive copy of the ranked scores).
func BenchmarkClassifyCached(b *testing.B) {
	sys := queryBenchSystem(b)
	mgr, err := NewManager(sys, nil, ManagerOptions{DriftThreshold: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Close()
	queries := queryBenchWorkload(64, 2)
	for _, q := range queries {
		mgr.Classify(q)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if scores := mgr.Classify(queries[i%len(queries)]); len(scores) == 0 {
			b.Fatal("empty ranking")
		}
	}
}

// BenchmarkClassifyUncached measures the same workload against the raw
// System path — embed the query, score every domain, sort — which is what
// every repeated query paid before the cache.
func BenchmarkClassifyUncached(b *testing.B) {
	sys := queryBenchSystem(b)
	queries := queryBenchWorkload(64, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if scores := sys.Classify(queries[i%len(queries)]); len(scores) == 0 {
			b.Fatal("empty ranking")
		}
	}
}

// BenchmarkClassifyBatch measures the parallel batch path: one op is the
// whole 64-query workload through Classifier.ClassifyBatch (flat score
// backing, bounded fan-out). Compare ns/op ÷ 64 against the uncached
// single-query cost.
func BenchmarkClassifyBatch(b *testing.B) {
	sys := queryBenchSystem(b)
	queries := queryBenchWorkload(64, 2)
	kws := make([][]string, len(queries))
	for i, q := range queries {
		kws[i] = strings.Fields(q)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := sys.ClassifyBatch(kws); len(out) != len(kws) {
			b.Fatal("short batch")
		}
	}
}

// TestQueryBenchArtifact runs the trio via testing.Benchmark and writes the
// comparison to BENCH_query.json (repo root) when -bench-query-artifact is
// set:
//
//	go test ./payg -run TestQueryBenchArtifact -bench-query-artifact=true
func TestQueryBenchArtifact(t *testing.T) {
	if !*benchQueryArtifact {
		t.Skip("set -bench-query-artifact to regenerate BENCH_query.json")
	}
	sys := queryBenchSystem(t)
	cached := testing.Benchmark(BenchmarkClassifyCached)
	uncached := testing.Benchmark(BenchmarkClassifyUncached)
	batch := testing.Benchmark(BenchmarkClassifyBatch)
	type row struct {
		Name        string `json:"name"`
		Iterations  int    `json:"iterations"`
		NsPerOp     int64  `json:"ns_per_op"`
		AllocsPerOp int64  `json:"allocs_per_op"`
		BytesPerOp  int64  `json:"bytes_per_op"`
	}
	toRow := func(name string, r testing.BenchmarkResult) row {
		return row{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	artifact := struct {
		Description   string  `json:"description"`
		GoVersion     string  `json:"go_version"`
		Corpus        string  `json:"corpus"`
		Domains       int     `json:"domains"`
		BatchWidth    int     `json:"batch_width"`
		Cached        row     `json:"cached"`
		Uncached      row     `json:"uncached"`
		Batch         row     `json:"batch"`
		Speedup       float64 `json:"speedup"`
		BatchPerQuery int64   `json:"batch_ns_per_query"`
	}{
		Description: "Repeated-query classification: generation-keyed Manager cache vs uncached System.Classify, plus the parallel batch path (one op = 64 queries)",
		GoVersion:   runtime.Version(),
		Corpus: fmt.Sprintf("synthetic %d-template corpus, n=%d schemas (seed 1), 64-query repeated workload",
			len(queryBenchStems), queryBenchN),
		Domains:       sys.Model().NumDomains(),
		BatchWidth:    64,
		Cached:        toRow("BenchmarkClassifyCached", cached),
		Uncached:      toRow("BenchmarkClassifyUncached", uncached),
		Batch:         toRow("BenchmarkClassifyBatch", batch),
		Speedup:       float64(uncached.NsPerOp()) / float64(cached.NsPerOp()),
		BatchPerQuery: batch.NsPerOp() / 64,
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../BENCH_query.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("cached %d ns/op vs uncached %d ns/op (%.0fx); batch %d ns per query",
		cached.NsPerOp(), uncached.NsPerOp(), artifact.Speedup, artifact.BatchPerQuery)
}
