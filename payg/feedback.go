package payg

import (
	"schemaflow/internal/classify"
	"schemaflow/internal/core"
	"schemaflow/internal/feedback"
)

// Feedback is a batch of explicit user corrections to apply to a built
// system — the pay-as-you-go refinement step: the system starts from the
// automatic (approximate) integration and improves as users fix it.
type Feedback struct {
	// Moves reassigns schemas (by index in build order) to domains.
	Moves []Move
	// Merges unions pairs of domains that describe the same real-world
	// domain.
	Merges [][2]int
	// Splits isolates schemas into fresh singleton domains.
	Splits []int
}

// Move is one schema-to-domain correction.
type Move struct {
	Schema int
	Domain int
}

// FeedbackResult is the outcome of ApplyFeedback.
type FeedbackResult struct {
	// System is the corrected system, fully rebuilt (domains, mediation,
	// classifier). The original system is unchanged.
	System *System
	// DomainMap maps the old system's domain ids to the new system's
	// (-1 for domains merged away).
	DomainMap []int
	// NewDomainOf maps each split schema index to its fresh domain id.
	NewDomainOf map[int]int
}

// ApplyFeedback rebuilds the system with the corrections applied. Corrected
// schemas are pinned to their domains with probability 1.
func (s *System) ApplyFeedback(fb Feedback) (*FeedbackResult, error) {
	sess := feedback.NewSession(s.model)
	for _, mv := range fb.Moves {
		if err := sess.MoveSchema(mv.Schema, mv.Domain); err != nil {
			return nil, err
		}
	}
	for _, mg := range fb.Merges {
		if err := sess.MergeDomains(mg[0], mg[1]); err != nil {
			return nil, err
		}
	}
	for _, sp := range fb.Splits {
		if err := sess.SplitSchema(sp); err != nil {
			return nil, err
		}
	}
	res, err := sess.Apply()
	if err != nil {
		return nil, err
	}
	sys, err := s.rebuildFromModel(res.Model)
	if err != nil {
		return nil, err
	}
	return &FeedbackResult{System: sys, DomainMap: res.DomainMap, NewDomainOf: res.NewDomainOf}, nil
}

// AddSchema integrates one new source incrementally: the schema joins its
// most similar existing domain (or a fresh singleton), existing domains are
// untouched — the serving feature space is extended copy-on-write rather
// than rebuilt — and the classifier and mediation are rebuilt over the
// extended corpus. It returns the new system and the new schema's domain id.
func (s *System) AddSchema(sch Schema) (*System, int, error) {
	model, domain, err := feedback.AddSchema(s.model, sch)
	if err != nil {
		return nil, 0, err
	}
	sys, err := s.rebuildFromModel(model)
	if err != nil {
		return nil, 0, err
	}
	return sys, domain, nil
}

// rebuildFromModel constructs a complete System around an updated model,
// reusing the original options.
func (s *System) rebuildFromModel(m *core.Model) (*System, error) {
	ccfg := classify.Config{}
	if s.opts.ApproximateClassifier {
		ccfg.Mode = classify.Approximate
	}
	if s.opts.ExactClassifier {
		ccfg.MaxExactUncertain = -1
	}
	cls, err := classify.New(m, ccfg)
	if err != nil {
		return nil, err
	}
	// Fit a fresh backend instance against the updated space — the old
	// system may still be serving queries from its own fitted state.
	vec, err := s.opts.newVectorizer()
	if err != nil {
		return nil, err
	}
	if err := vec.Fit(m.Space); err != nil {
		return nil, err
	}
	sys := &System{
		opts:       s.opts,
		schemas:    m.Schemas,
		space:      m.Space,
		model:      m,
		classifier: cls,
		vectorizer: vec,
	}
	if !s.opts.SkipMediation {
		if err := sys.buildMediation(); err != nil {
			return nil, err
		}
	}
	return sys, nil
}
