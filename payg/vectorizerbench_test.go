package payg

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
)

// benchAssignBackends gates TestAssignBackendBenchArtifact, which merges the
// per-backend online-path rows into BENCH_assign.json at the repository root
// (second step of make bench-assign).
var benchAssignBackends = flag.Bool("bench-assign-backends", false, "merge per-backend Assign/Classify rows into BENCH_assign.json")

var (
	backendBenchMu   sync.Mutex
	backendBenchSys  = map[string]*System{}
	backendBenchErrs = map[string]error{}
)

// backendBenchSystem builds the shared 1000-schema query-bench corpus once
// per backend. The online paths (Ingest, Classify) are read-only, so the
// benchmarks can share one system per backend.
func backendBenchSystem(tb testing.TB, backend string) *System {
	tb.Helper()
	backendBenchMu.Lock()
	defer backendBenchMu.Unlock()
	if _, ok := backendBenchSys[backend]; !ok {
		backendBenchSys[backend], backendBenchErrs[backend] =
			Build(queryBenchSet(queryBenchN, 1), Options{SkipMediation: true, Vectorizer: backend})
	}
	if err := backendBenchErrs[backend]; err != nil {
		tb.Fatal(err)
	}
	return backendBenchSys[backend]
}

// backendBenchArrival matches the corpus' first template with two novel
// suffixed terms — the standard arrival profile of the assign benchmarks.
func backendBenchArrival() Schema {
	return Schema{
		Name: "arrival",
		Attributes: []string{
			queryBenchStems[0] + "identifier",
			queryBenchStems[0] + "name",
			queryBenchStems[0] + "price",
			queryBenchStems[0] + "statusv99",
			queryBenchStems[0] + "ownerv98",
		},
	}
}

func benchAssignBackend(b *testing.B, backend string) {
	sys := backendBenchSystem(b, backend)
	s := backendBenchArrival()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := sys.Ingest(s)
		if err != nil {
			b.Fatal(err)
		}
		if a.Fresh {
			b.Fatal("arrival unexpectedly fresh")
		}
	}
}

func benchClassifyBackend(b *testing.B, backend string) {
	sys := backendBenchSystem(b, backend)
	queries := queryBenchWorkload(64, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if scores := sys.Classify(queries[i%len(queries)]); len(scores) == 0 {
			b.Fatal("empty ranking")
		}
	}
}

// The per-backend online-path pairs: the term backend compares every domain
// exactly; the ngram backend shortlists via HNSW then verifies the
// shortlist exactly. Names keep the Assign/Classify stems so the CI bench
// smoke (-bench='Assign|Classify') exercises both backends.
func BenchmarkAssignTermBackend(b *testing.B)    { benchAssignBackend(b, "term") }
func BenchmarkAssignNGramBackend(b *testing.B)   { benchAssignBackend(b, "ngram") }
func BenchmarkClassifyTermBackend(b *testing.B)  { benchClassifyBackend(b, "term") }
func BenchmarkClassifyNGramBackend(b *testing.B) { benchClassifyBackend(b, "ngram") }

// TestAssignBackendBenchArtifact runs the per-backend pairs via
// testing.Benchmark and merges them into BENCH_assign.json under a
// "backends" key, preserving whatever the internal/ingest artifact step
// wrote (make bench-assign runs both):
//
//	go test ./payg -run TestAssignBackendBenchArtifact -bench-assign-backends=true
func TestAssignBackendBenchArtifact(t *testing.T) {
	if !*benchAssignBackends {
		t.Skip("set -bench-assign-backends to merge backend rows into BENCH_assign.json")
	}
	type row struct {
		Name        string `json:"name"`
		Backend     string `json:"backend"`
		Op          string `json:"op"`
		Iterations  int    `json:"iterations"`
		NsPerOp     int64  `json:"ns_per_op"`
		AllocsPerOp int64  `json:"allocs_per_op"`
		BytesPerOp  int64  `json:"bytes_per_op"`
	}
	var rows []row
	for _, bk := range []string{"term", "ngram"} {
		bk := bk
		runs := []struct {
			op    string
			bench func(*testing.B)
		}{
			{"ingest", func(b *testing.B) { benchAssignBackend(b, bk) }},
			{"classify", func(b *testing.B) { benchClassifyBackend(b, bk) }},
		}
		for _, run := range runs {
			r := testing.Benchmark(run.bench)
			rows = append(rows, row{
				Name:        fmt.Sprintf("Benchmark%s%sBackend", map[string]string{"ingest": "Assign", "classify": "Classify"}[run.op], map[string]string{"term": "Term", "ngram": "NGram"}[bk]),
				Backend:     bk,
				Op:          run.op,
				Iterations:  r.N,
				NsPerOp:     r.NsPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			})
		}
	}

	const path = "../BENCH_assign.json"
	artifact := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &artifact); err != nil {
			t.Fatalf("existing %s is not JSON: %v", path, err)
		}
	} else {
		artifact["description"] = "Per-arrival schema assignment benchmarks"
		artifact["go_version"] = runtime.Version()
	}
	artifact["backends_description"] = "Online-path cost per vectorizer backend over the 1000-schema query-bench corpus: term compares every domain exactly; ngram prunes via an HNSW shortlist then verifies exactly"
	artifact["backends"] = rows
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%s/%s: %d ns/op (%d allocs)", r.Backend, r.Op, r.NsPerOp, r.AllocsPerOp)
	}
}
