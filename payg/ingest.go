package payg

import (
	"fmt"

	"schemaflow/internal/ingest"
)

// DomainProb is one (domain, probability) entry of an incremental
// assignment.
type DomainProb struct {
	Domain int
	Prob   float64
}

// Assignment is the outcome of routing one newly arrived schema against a
// built system's current domains — the online counterpart of Algorithm 3.
// Probabilities across Domains sum to 1 (a clear in-domain schema gets a
// single entry with probability 1; a boundary schema within the θ margin
// of several domains splits across them).
type Assignment struct {
	// Domains lists the claiming domains, or is empty when Fresh.
	Domains []DomainProb
	// BestDomain is the most similar domain regardless of gates. It is -1
	// when the system has no domains to compare against, and also when the
	// arrival's similarity to every domain is exactly 0 (no matched term in
	// common with any cluster — such an arrival is always Fresh).
	BestDomain int
	// BestSim is s_c_sim against BestDomain (0 when BestDomain is -1).
	BestSim float64
	// Fresh is true when no domain passed the τ_c_sim gate; the schema
	// matches nothing the system currently knows and will seed a new
	// domain at the next recluster.
	Fresh bool
}

// Ingest computes the incremental assignment of one new schema against the
// system's current domains: its feature vector is embedded by extending the
// serving feature space incrementally (copy-on-write — no per-request
// rebuild over the existing corpus) and compared to every cluster, gated by
// τ_c_sim and θ exactly as Algorithm 3 does at build time. The system is
// read, never modified — in particular the classifier's precomputed tables
// are untouched — so Ingest is safe to call concurrently with Classify and
// Execute. To actually grow a serving system use Manager.Ingest, which
// journals the schema and folds it into the next background rebuild.
func (s *System) Ingest(sch Schema) (*Assignment, error) {
	// A pruning backend (ngram) restricts Algorithm 3 to the domains
	// holding the arrival's ANN-nearest schemas; the restricted comparison
	// is exact, so Best/BestSim match the unrestricted answer whenever the
	// true winner's domain made the shortlist. nil include = compare all.
	a, err := ingest.AssignRestricted(s.model, sch, s.shortlistInclude(sch))
	if err != nil {
		return nil, fmt.Errorf("payg: %w", err)
	}
	out := &Assignment{BestDomain: a.Best, BestSim: a.BestSim, Fresh: a.Fresh}
	for _, d := range a.Domains {
		out.Domains = append(out.Domains, DomainProb{Domain: d.Schema, Prob: d.Prob})
	}
	return out, nil
}

// shortlistInclude builds the domain-include predicate for an arriving
// schema from the backend's ANN shortlist over the schema's attribute
// terms, or nil when the backend does not prune (then every domain is
// compared — the exact path).
func (s *System) shortlistInclude(sch Schema) func(r int) bool {
	if s.vectorizer == nil {
		return nil
	}
	sl := s.vectorizer.Shortlist(s.space.QueryTerms(sch.Attributes), s.opts.ANNShortlistK)
	if sl == nil {
		return nil
	}
	set := make([]bool, s.model.NumDomains())
	for _, si := range sl {
		for _, mem := range s.model.DomainsOf(si) {
			set[mem.Schema] = true
		}
	}
	return func(r int) bool { return set[r] }
}
