package payg

import (
	"encoding/gob"
	"fmt"
	"io"

	"schemaflow/internal/classify"
	"schemaflow/internal/cluster"
	"schemaflow/internal/core"
	"schemaflow/internal/feature"
	"schemaflow/internal/schema"
)

// snapshot is the on-disk form of a System (gob-encoded). It stores the
// schemas, options, cluster assignment, probabilistic memberships, and the
// classifier's precomputed tables — everything whose recomputation is
// expensive. The feature space and mediated schemas are rebuilt
// deterministically on load (cheap relative to clustering and exact
// classifier setup).
//
// Version 2 adds Pending: schemas accepted by the online ingestion
// pipeline but not yet folded into the model by a recluster, so a restart
// keeps the journal. Version-1 snapshots decode with an empty journal.
//
// Version 3 adds the sharding fields: Sharded marks a snapshot of a
// sharded (domain-pruned) system and LocalDomains lists the domains it
// holds. Both are needed — gob encodes an empty slice as nil, so a bare
// LocalDomains could not distinguish "full system" from "shard owning
// zero domains" (possible when shards outnumber domains). Version-1/2
// snapshots decode as full systems.
type snapshot struct {
	Version      int
	Opts         Options
	Schemas      schema.Set
	Assign       []int
	Memberships  [][]core.Membership
	Classifier   *classify.Snapshot
	Pending      schema.Set
	Sharded      bool
	LocalDomains []int
}

const snapshotVersion = 3

// Save serializes the system so that Load can reconstruct it without
// re-running clustering or classifier setup. The snapshot carries no
// pending ingestion journal; to persist a live ingestion pipeline use
// Manager.Save.
func (s *System) Save(w io.Writer) error {
	return s.saveWithPending(w, nil)
}

// Save serializes the manager's serving system together with its pending
// ingestion journal. LoadManager restores both.
func (m *Manager) Save(w io.Writer) error {
	// Hold the swap lock so the (system, journal) pair is consistent: a
	// rebuild publishing mid-save could otherwise drain schemas into the
	// system while we snapshot the old journal (duplicating them) or vice
	// versa.
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.cur.Load()
	return st.sys.saveWithPending(w, m.journal.Schemas())
}

// SaveWithPending serializes the system together with an explicit pending
// journal — the primitive tools like the checkpoint splitter use to write
// a (possibly sharded) system plus its routed share of the journal.
func (s *System) SaveWithPending(w io.Writer, pending []Schema) error {
	return s.saveWithPending(w, pending)
}

func (s *System) saveWithPending(w io.Writer, pending schema.Set) error {
	snap := snapshot{
		Version:      snapshotVersion,
		Opts:         s.opts,
		Schemas:      s.schemas,
		Assign:       s.model.Clustering.Assign,
		Memberships:  make([][]core.Membership, len(s.schemas)),
		Classifier:   s.classifier.Snapshot(),
		Pending:      pending,
		Sharded:      s.localSet != nil,
		LocalDomains: s.local,
	}
	for i := range s.schemas {
		snap.Memberships[i] = s.model.DomainsOf(i)
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("payg: encoding snapshot: %w", err)
	}
	return nil
}

// Load reconstructs a System previously written by Save. The feature space
// is rebuilt (vocabulary and vectors are deterministic given the schemas and
// options); clustering and classifier tables come from the snapshot. Any
// pending ingestion journal in the snapshot is dropped — use LoadWithPending
// or LoadManager to recover it.
func Load(r io.Reader) (*System, error) {
	sys, _, err := LoadWithPending(r)
	return sys, err
}

// LoadWithPending is Load plus the snapshot's pending ingestion journal:
// schemas accepted online but not yet reclustered into the model when the
// snapshot was taken. LoadManager re-journals them automatically.
func LoadWithPending(r io.Reader) (*System, []Schema, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, nil, fmt.Errorf("payg: decoding snapshot: %w", err)
	}
	if snap.Version < 1 || snap.Version > snapshotVersion {
		return nil, nil, fmt.Errorf("payg: snapshot version %d, want 1–%d", snap.Version, snapshotVersion)
	}
	opts := snap.Opts.withDefaults()
	// featureConfig applies the same sentinel translation Build used —
	// notably TauTSim 0 (a requested literal threshold) must become
	// feature.Config's negative escape, not silently revert to 0.8 on load.
	fcfg, err := opts.featureConfig()
	if err != nil {
		return nil, nil, err
	}
	sp := feature.BuildLite(snap.Schemas, fcfg)
	cl := cluster.FromAssignment(snap.Assign)
	model, err := core.RestoreModel(snap.Schemas, sp, cl, snap.Memberships, core.Options{TauCSim: opts.TauCSim, Theta: opts.Theta})
	if err != nil {
		return nil, nil, err
	}
	cls, err := classify.Restore(model, snap.Classifier)
	if err != nil {
		return nil, nil, err
	}
	// Fitted vectorizer state (embeddings, ANN graph) is derived, never
	// persisted: re-fit deterministically against the rebuilt space.
	vec, err := opts.newVectorizer()
	if err != nil {
		return nil, nil, err
	}
	if err := vec.Fit(sp); err != nil {
		return nil, nil, err
	}
	sys := &System{opts: opts, schemas: snap.Schemas, space: sp, model: model, classifier: cls, vectorizer: vec}
	if snap.Sharded {
		// Restore the local-domain view before mediation so only local
		// domains are re-mediated — the whole point of the pruned form.
		nD := model.NumDomains()
		sys.local = snap.LocalDomains
		if sys.local == nil {
			sys.local = []int{} // gob nil/empty collapse; Sharded says pruned
		}
		sys.localSet = make([]bool, nD)
		for _, r := range sys.local {
			if r < 0 || r >= nD {
				return nil, nil, fmt.Errorf("payg: snapshot local domain %d out of range [0,%d)", r, nD)
			}
			sys.localSet[r] = true
		}
	}
	if !opts.SkipMediation {
		if err := sys.buildMediation(); err != nil {
			return nil, nil, err
		}
	}
	return sys, snap.Pending, nil
}
