package payg

import (
	"encoding/gob"
	"fmt"
	"io"

	"schemaflow/internal/classify"
	"schemaflow/internal/cluster"
	"schemaflow/internal/core"
	"schemaflow/internal/feature"
	"schemaflow/internal/schema"
	"schemaflow/internal/terms"
)

// snapshot is the on-disk form of a System (gob-encoded). It stores the
// schemas, options, cluster assignment, probabilistic memberships, and the
// classifier's precomputed tables — everything whose recomputation is
// expensive. The feature space and mediated schemas are rebuilt
// deterministically on load (cheap relative to clustering and exact
// classifier setup).
type snapshot struct {
	Version     int
	Opts        Options
	Schemas     schema.Set
	Assign      []int
	Memberships [][]core.Membership
	Classifier  *classify.Snapshot
}

const snapshotVersion = 1

// Save serializes the system so that Load can reconstruct it without
// re-running clustering or classifier setup.
func (s *System) Save(w io.Writer) error {
	snap := snapshot{
		Version:     snapshotVersion,
		Opts:        s.opts,
		Schemas:     s.schemas,
		Assign:      s.model.Clustering.Assign,
		Memberships: make([][]core.Membership, len(s.schemas)),
		Classifier:  s.classifier.Snapshot(),
	}
	for i := range s.schemas {
		snap.Memberships[i] = s.model.DomainsOf(i)
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("payg: encoding snapshot: %w", err)
	}
	return nil
}

// Load reconstructs a System previously written by Save. The feature space
// is rebuilt (vocabulary and vectors are deterministic given the schemas and
// options); clustering and classifier tables come from the snapshot.
func Load(r io.Reader) (*System, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("payg: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("payg: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	opts := snap.Opts.withDefaults()
	ts, err := opts.termSim()
	if err != nil {
		return nil, err
	}
	fcfg := feature.Config{
		TermOpts: terms.DefaultOptions(),
		Sim:      ts,
		Tau:      opts.TauTSim,
	}
	if opts.TermFrequencyFeatures {
		fcfg.Mode = feature.TermFrequency
	}
	sp := feature.BuildLite(snap.Schemas, fcfg)
	cl := cluster.FromAssignment(snap.Assign)
	model, err := core.RestoreModel(snap.Schemas, sp, cl, snap.Memberships, core.Options{TauCSim: opts.TauCSim, Theta: opts.Theta})
	if err != nil {
		return nil, err
	}
	cls, err := classify.Restore(model, snap.Classifier)
	if err != nil {
		return nil, err
	}
	sys := &System{opts: opts, schemas: snap.Schemas, space: sp, model: model, classifier: cls}
	if !opts.SkipMediation {
		if err := sys.buildMediation(); err != nil {
			return nil, err
		}
	}
	return sys, nil
}
