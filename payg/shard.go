package payg

import (
	"fmt"
	"sort"

	"schemaflow/internal/ingest"
	"schemaflow/internal/mediate"
)

// This file makes a System shard-aware: a shard replica keeps the full
// schema corpus, feature space, and domain model (all cheap and required
// for bit-identical classification math) but prunes the two O(|D|)-heavy
// structures — the classifier's dense per-domain delta tables and the
// per-domain mediated schemas — down to the domains it owns. Domain ids
// remain global: a pruned system still speaks the same id space as the
// full one, it just answers -Inf/"not local" for domains that live on
// other shards. The partitioning itself (which domain belongs to which
// shard) is decided by the caller (internal/shard's rendezvous ring).

// Shard returns a copy of the system restricted to the given local
// domains. The schemas, feature space, and model are shared with the
// receiver; the classifier keeps only the local domains' tables
// (classify.Classifier.Prune) and mediation keeps only the local
// domains' mediated schemas. The receiver must be a full (unsharded)
// system. Classification on the result reports the receiver's exact
// LogPosterior for every local domain and -Inf for the rest;
// MediatedAttributes/Execute refuse non-local domains with an error.
func (s *System) Shard(local []int) (*System, error) {
	if s.localSet != nil {
		return nil, fmt.Errorf("payg: cannot shard an already-sharded system")
	}
	nD := s.model.NumDomains()
	sorted := make([]int, 0, len(local))
	sorted = append(sorted, local...)
	sort.Ints(sorted)
	set := make([]bool, nD)
	for i, r := range sorted {
		if r < 0 || r >= nD {
			return nil, fmt.Errorf("payg: shard domain %d out of range [0,%d)", r, nD)
		}
		if i > 0 && sorted[i-1] == r {
			return nil, fmt.Errorf("payg: duplicate shard domain %d", r)
		}
		set[r] = true
	}
	cls, err := s.classifier.Prune(sorted)
	if err != nil {
		return nil, fmt.Errorf("payg: %w", err)
	}
	sh := &System{
		opts:       s.opts,
		schemas:    s.schemas,
		space:      s.space,
		model:      s.model,
		classifier: cls,
		// The fitted backend is bound to the shared (immutable) feature
		// space, so the shard reuses it rather than re-fitting.
		vectorizer: s.vectorizer,
		local:      sorted,
		localSet:   set,
	}
	if s.mediated != nil {
		sh.mediated = make([]*mediate.Mediated, nD)
		for _, r := range sorted {
			sh.mediated[r] = s.mediated[r]
		}
	}
	return sh, nil
}

// LocalDomains returns the sorted domain ids this system holds locally,
// or nil when the system is full (unsharded — every domain is local).
// The returned slice is a copy.
func (s *System) LocalDomains() []int {
	if s.local == nil {
		return nil
	}
	out := make([]int, len(s.local)) // non-nil even for a zero-domain shard
	copy(out, s.local)
	return out
}

// IsLocalDomain reports whether the system holds domain r locally. A
// full system holds every valid domain id.
func (s *System) IsLocalDomain(r int) bool {
	if r < 0 || r >= s.model.NumDomains() {
		return false
	}
	if s.localSet == nil {
		return true
	}
	return s.localSet[r]
}

// NumLocalDomains returns how many domains this system holds locally
// (equal to NumDomains for a full system).
func (s *System) NumLocalDomains() int {
	if s.localSet == nil {
		return s.model.NumDomains()
	}
	return len(s.local)
}

// IngestLocal is Ingest with the Algorithm-3 comparison restricted to
// the system's local domains — the read-only probe a router broadcasts
// to every shard before routing an arrival. On a full system it is
// exactly Ingest. Because per-cluster similarities are independent of
// other clusters and every shard keeps the full feature space, a
// restricted probe's BestSim equals the full probe's similarity to the
// same domain, which is what makes the router's argmax over shard probes
// equal the single-node argmax.
func (s *System) IngestLocal(sch Schema) (*Assignment, error) {
	if s.localSet == nil {
		return s.Ingest(sch)
	}
	inc := func(r int) bool { return s.localSet[r] }
	// A pruning backend narrows the probe further: local AND shortlisted.
	if sl := s.shortlistInclude(sch); sl != nil {
		local := inc
		inc = func(r int) bool { return local(r) && sl(r) }
	}
	a, err := ingest.AssignRestricted(s.model, sch, inc)
	if err != nil {
		return nil, fmt.Errorf("payg: %w", err)
	}
	out := &Assignment{BestDomain: a.Best, BestSim: a.BestSim, Fresh: a.Fresh}
	for _, d := range a.Domains {
		out.Domains = append(out.Domains, DomainProb{Domain: d.Schema, Prob: d.Prob})
	}
	return out, nil
}
