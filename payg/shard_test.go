package payg

import (
	"bytes"
	"math"
	"testing"

	"schemaflow/internal/classify"
)

// shardQueries exercises travel, bibliography, singleton, and no-match
// vocabulary against the demoSchemas corpus.
var shardQueries = []string{
	"departure toronto",
	"airline tickets cheap",
	"title author year",
	"conference publication",
	"telescope aperture",
	"destination airport class",
	"zebra xylophone", // matches nothing
	"departure title", // straddles two domains
}

// splitDomains partitions [0,numDomains) round-robin into n slices. The
// bit-identity property must hold for ANY partition, so tests don't need
// the production rendezvous ring here.
func splitDomains(numDomains, n int) [][]int {
	parts := make([][]int, n)
	for i := range parts {
		parts[i] = []int{} // a shard may own zero domains (n > numDomains)
	}
	for d := 0; d < numDomains; d++ {
		parts[d%n] = append(parts[d%n], d)
	}
	return parts
}

// localScores filters a shard's ranking down to the domains it owns —
// what the shard endpoint puts on the wire.
func localScores(sh *System, scores []Score) []classify.Score {
	var out []classify.Score
	for _, sc := range scores {
		if sh.IsLocalDomain(sc.Domain) {
			out = append(out, classify.Score{Domain: sc.Domain, LogPosterior: sc.LogPosterior})
		}
	}
	return out
}

func sameScores(t *testing.T, got, want []Score) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("ranking length %d, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		// Bit-identity: ==, not a tolerance. NaN never appears; -Inf
		// compares equal to -Inf under ==.
		if g.Domain != w.Domain || g.LogPosterior != w.LogPosterior || g.Posterior != w.Posterior {
			t.Fatalf("rank %d: got {%d %v %v}, want {%d %v %v}",
				i, g.Domain, g.LogPosterior, g.Posterior, w.Domain, w.LogPosterior, w.Posterior)
		}
	}
}

// The tentpole property: scattering a query over any N-way domain split
// and merging the partials is bit-identical to classifying on the
// unsharded system — same domains, same order, same float64s.
func TestShardClassifyBitIdentical(t *testing.T) {
	full := build(t, Options{})
	for _, n := range []int{1, 2, 5} {
		parts := splitDomains(full.NumDomains(), n)
		shards := make([]*System, n)
		for i, local := range parts {
			sh, err := full.Shard(local)
			if err != nil {
				t.Fatalf("n=%d shard %d: %v", n, i, err)
			}
			shards[i] = sh
		}
		for _, q := range shardQueries {
			want := full.Classify(q)
			partials := make([][]classify.Score, n)
			for i, sh := range shards {
				partials[i] = localScores(sh, sh.Classify(q))
			}
			got := classify.MergeScores(partials)
			sameScores(t, got, want)
		}
	}
}

// With one shard missing the merge must still order the covered domains
// exactly as the full ranking orders them (degraded, not wrong).
func TestShardClassifyOneShardDown(t *testing.T) {
	full := build(t, Options{})
	const n = 2
	parts := splitDomains(full.NumDomains(), n)
	for down := 0; down < n; down++ {
		var partials [][]classify.Score
		covered := make(map[int]bool)
		for i, local := range parts {
			if i == down {
				continue
			}
			sh, err := full.Shard(local)
			if err != nil {
				t.Fatal(err)
			}
			partials = append(partials, localScores(sh, sh.Classify("departure airline title")))
			for _, d := range local {
				covered[d] = true
			}
		}
		got := classify.MergeScores(partials)
		var want []Score
		for _, sc := range full.Classify("departure airline title") {
			if covered[sc.Domain] {
				want = append(want, sc)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("down=%d: %d covered scores, want %d", down, len(got), len(want))
		}
		for i := range want {
			if got[i].Domain != want[i].Domain || got[i].LogPosterior != want[i].LogPosterior {
				t.Fatalf("down=%d rank %d: got domain %d lp %v, want %d lp %v",
					down, i, got[i].Domain, got[i].LogPosterior, want[i].Domain, want[i].LogPosterior)
			}
		}
	}
}

// The broadcast assign-probe: the best (shard, similarity) over
// restricted probes must reproduce the single-node assignment, and the
// arrival is globally fresh exactly when every shard says fresh.
func TestIngestLocalMatchesFullAssignment(t *testing.T) {
	full := build(t, Options{})
	parts := splitDomains(full.NumDomains(), 2)
	shards := make([]*System, len(parts))
	for i, local := range parts {
		sh, err := full.Shard(local)
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = sh
	}
	arrivals := []Schema{
		{Name: "charters", Attributes: []string{"departure airport", "destination airport", "price"}},
		{Name: "theses", Attributes: []string{"title", "authors", "university", "year"}},
		{Name: "minerals", Attributes: []string{"hardness", "crystal system"}},
	}
	for _, sch := range arrivals {
		want, err := full.Ingest(sch)
		if err != nil {
			t.Fatal(err)
		}
		bestSim, bestDomain := math.Inf(-1), -1
		allFresh := true
		for _, sh := range shards {
			a, err := sh.IngestLocal(sch)
			if err != nil {
				t.Fatal(err)
			}
			if !a.Fresh {
				allFresh = false
			}
			if a.BestDomain >= 0 && a.BestSim > bestSim {
				bestSim, bestDomain = a.BestSim, a.BestDomain
			}
		}
		if allFresh != want.Fresh {
			t.Fatalf("%s: shards fresh=%v, full fresh=%v", sch.Name, allFresh, want.Fresh)
		}
		if want.BestDomain >= 0 {
			if bestDomain != want.BestDomain || bestSim != want.BestSim {
				t.Fatalf("%s: shard argmax (%d, %v), full (%d, %v)",
					sch.Name, bestDomain, bestSim, want.BestDomain, want.BestSim)
			}
		}
	}
}

// A sharded system must survive the checkpoint round-trip with its
// pruning intact — including the nil-vs-empty edge of a shard that owns
// zero domains.
func TestShardPersistRoundTrip(t *testing.T) {
	full := build(t, Options{})
	parts := splitDomains(full.NumDomains(), 2)
	pending := []Schema{{Name: "late", Attributes: []string{"departure", "price"}}}
	for i, local := range parts {
		sh, err := full.Shard(local)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sh.SaveWithPending(&buf, pending); err != nil {
			t.Fatal(err)
		}
		got, gotPending, err := LoadWithPending(&buf)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if ld := got.LocalDomains(); ld == nil {
			t.Fatalf("shard %d: loaded system lost its sharded-ness", i)
		} else if len(ld) != len(local) {
			t.Fatalf("shard %d: loaded %v local domains, want %v", i, ld, local)
		}
		if len(gotPending) != 1 || gotPending[0].Name != "late" {
			t.Fatalf("shard %d: pending round-trip %+v", i, gotPending)
		}
		for _, q := range shardQueries {
			sameScores(t, got.Classify(q), sh.Classify(q))
		}
	}

	empty, err := full.Shard(nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := empty.SaveWithPending(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, _, err := LoadWithPending(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ld := got.LocalDomains(); ld == nil || len(ld) != 0 {
		t.Fatalf("zero-domain shard round-trip: LocalDomains = %v, want empty non-nil", ld)
	}
	if got.NumLocalDomains() != 0 {
		t.Fatalf("zero-domain shard owns %d domains after reload", got.NumLocalDomains())
	}
}

func TestShardRefusesBadInput(t *testing.T) {
	full := build(t, Options{})
	if _, err := full.Shard([]int{0, full.NumDomains()}); err == nil {
		t.Fatal("out-of-range domain accepted")
	}
	if _, err := full.Shard([]int{0, 0}); err == nil {
		t.Fatal("duplicate domain accepted")
	}
	sh, err := full.Shard([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Shard([]int{0}); err == nil {
		t.Fatal("re-sharding a shard accepted")
	}
}

// Non-local domains must be invisible to mediation: Domains() lists only
// local ones and MediatedAttributes refuses the rest.
func TestShardMediationLocality(t *testing.T) {
	full := build(t, Options{})
	local := []int{0}
	sh, err := full.Shard(local)
	if err != nil {
		t.Fatal(err)
	}
	infos := sh.Domains()
	if len(infos) != 1 || infos[0].ID != 0 {
		t.Fatalf("shard Domains() = %+v, want just domain 0", infos)
	}
	if _, err := sh.MediatedAttributes(0); err != nil {
		t.Fatalf("local mediated attributes: %v", err)
	}
	if _, err := sh.MediatedAttributes(1); err == nil {
		t.Fatal("non-local mediated attributes did not error")
	}
}
