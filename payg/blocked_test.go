package payg

import (
	"context"
	"testing"
	"time"

	"schemaflow/internal/dataset"
	"schemaflow/internal/eval"
)

func assignOf(s *System) []int {
	return s.Model().Clustering.Assign
}

// TestAutoSwitch pins the CandidateGen="auto" decision boundary.
func TestAutoSwitch(t *testing.T) {
	for _, tc := range []struct {
		gen     string
		autoMin int
		n       int
		blocked bool
	}{
		{"auto", 4096, 100, false},
		{"auto", 50, 100, true},
		{"exact", 50, 100, false},
		{"lsh", 4096, 100, true},
	} {
		o := Options{CandidateGen: tc.gen, CandidateAutoMin: tc.autoMin}.withDefaults()
		got, err := o.useBlockedPath(tc.n)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if got != tc.blocked {
			t.Errorf("gen=%s autoMin=%d n=%d: blocked=%v, want %v", tc.gen, tc.autoMin, tc.n, got, tc.blocked)
		}
	}
	o := Options{CandidateGen: "bogus"}.withDefaults()
	if _, err := o.useBlockedPath(10); err == nil {
		t.Error("unknown candidate generator accepted")
	}
}

// TestSmallCorpusDefaultStaysExact: below CandidateAutoMin the default
// "auto" build must be bit-identical to a forced exact build — the blocked
// machinery must not perturb small corpora at all.
func TestSmallCorpusDefaultStaysExact(t *testing.T) {
	set := dataset.Large(dataset.LargeConfig{N: 150, Domains: 5, Seed: 3})
	auto, err := Build(set, Options{SkipMediation: true})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Build(set, Options{SkipMediation: true, CandidateGen: "exact"})
	if err != nil {
		t.Fatal(err)
	}
	a, e := assignOf(auto), assignOf(exact)
	for i := range a {
		if a[i] != e[i] {
			t.Fatalf("auto and exact diverge at schema %d: %d vs %d", i, a[i], e[i])
		}
	}
	am, em := auto.Model(), exact.Model()
	if am.NumDomains() != em.NumDomains() {
		t.Fatalf("domain counts differ: %d vs %d", am.NumDomains(), em.NumDomains())
	}
	for i := range set {
		da, de := am.DomainsOf(i), em.DomainsOf(i)
		if len(da) != len(de) {
			t.Fatalf("schema %d membership widths differ", i)
		}
		for k := range da {
			if da[k] != de[k] {
				t.Fatalf("schema %d membership %d differs: %+v vs %+v", i, k, da[k], de[k])
			}
		}
	}
}

// TestBlockedBuildWorksOnSmallCorpus forces the LSH path where exact is
// also cheap and checks the result is a working system with near-identical
// clustering.
func TestBlockedBuildWorksOnSmallCorpus(t *testing.T) {
	set := dataset.Large(dataset.LargeConfig{N: 400, Domains: 8, Seed: 5})
	blocked, err := Build(set, Options{SkipMediation: true, CandidateGen: "lsh"})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Build(set, Options{SkipMediation: true, CandidateGen: "exact"})
	if err != nil {
		t.Fatal(err)
	}
	if f1 := eval.PairwiseF1(assignOf(blocked), assignOf(exact)); f1 < 0.95 {
		t.Errorf("blocked-vs-exact pairwise F1 = %.4f, want ≥ 0.95", f1)
	}
	if blocked.NumDomains() == 0 {
		t.Fatal("blocked build produced no domains")
	}
	if scores := blocked.Classify("kilubu belilu"); len(scores) == 0 {
		t.Error("blocked-built system cannot classify")
	}
}

// TestBlockedMatchesExactOnPaperCorpora is the satellite e2e test: on the
// paper-scale evaluation corpora, the blocked pipeline's clustering must
// agree with the exact pipeline at pairwise F1 ≥ 0.95.
func TestBlockedMatchesExactOnPaperCorpora(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale corpora; skipped in -short")
	}
	// The paper corpora, generated directly (experiments.LoadCorpora would
	// be an import cycle now that experiments' backend ablation drives payg).
	dw := dataset.DW(1)
	ss := dataset.SS(2)
	for _, tc := range []struct {
		name string
		set  []Schema
	}{
		{"dw", dw},
		{"ss", ss},
		{"both", dataset.Union(dw, ss)},
		{"ddh", dataset.DDH(3)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			blocked, err := Build(tc.set, Options{SkipMediation: true, CandidateGen: "lsh"})
			if err != nil {
				t.Fatal(err)
			}
			exact, err := Build(tc.set, Options{SkipMediation: true, CandidateGen: "exact"})
			if err != nil {
				t.Fatal(err)
			}
			f1 := eval.PairwiseF1(assignOf(blocked), assignOf(exact))
			t.Logf("%s: n=%d, F1=%.4f, blocked domains=%d, exact domains=%d",
				tc.name, len(tc.set), f1, blocked.NumDomains(), exact.NumDomains())
			if f1 < 0.95 {
				t.Errorf("pairwise F1 %.4f < 0.95", f1)
			}
		})
	}
}

// TestManagerClosePromptlyAbortsLargeRecluster is the cancellation
// satellite end to end: with a corpus big enough that a full rebuild takes
// real time, Close must cancel the in-flight recluster mid-pipeline (the
// ctx polls inside the similarity fill and HAC merge loop) rather than
// wait it out, and the aborted rebuild must not publish.
func TestManagerClosePromptlyAbortsLargeRecluster(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second exact build; skipped in -short")
	}
	set := dataset.Large(dataset.LargeConfig{N: 2500, Domains: 20, Seed: 13})
	opts := Options{SkipMediation: true, CandidateGen: "exact"}
	start := time.Now()
	sys, err := Build(set, opts)
	if err != nil {
		t.Fatal(err)
	}
	buildTime := time.Since(start)

	mgr, err := NewManager(sys, nil, ManagerOptions{DriftThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Ingest(Schema{Name: "late", Attributes: []string{"kilubu", "belilu"}}); err != nil {
		t.Fatal(err)
	}
	genBefore := mgr.Status().Generation

	// Trigger the background flight without waiting for it, then Close.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_ = mgr.Recluster(ctx)

	start = time.Now()
	mgr.Close()
	closeTime := time.Since(start)

	bound := buildTime / 2
	if bound < 500*time.Millisecond {
		bound = 500 * time.Millisecond
	}
	if closeTime > bound {
		t.Errorf("Close took %v with a rebuild in flight; full build is %v — cancellation is not prompt", closeTime, buildTime)
	}
	if gen := mgr.Status().Generation; gen != genBefore {
		t.Errorf("aborted rebuild published: generation %d → %d", genBefore, gen)
	}
}

// TestBlockedOptionsValidation: bad knobs must surface as Build errors.
func TestBlockedOptionsValidation(t *testing.T) {
	set := dataset.Large(dataset.LargeConfig{N: 50, Domains: 2, Seed: 1})
	if _, err := Build(set, Options{CandidateGen: "bogus"}); err == nil {
		t.Error("unknown CandidateGen accepted")
	}
	if _, err := Build(set, Options{CandidateGen: "lsh", LSHBands: 64, LSHRows: 65}); err == nil {
		t.Error("oversized signature accepted")
	}
}
