package payg

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
)

func demoSchemas() []Schema {
	return []Schema{
		{Name: "flights", Attributes: []string{"departure airport", "destination airport", "airline", "class"}},
		{Name: "trips", Attributes: []string{"departure", "destination", "departing date", "returning date"}},
		{Name: "tickets", Attributes: []string{"departure city", "destination city", "airline", "price"}},
		{Name: "papers", Attributes: []string{"title", "authors", "publication year", "conference"}},
		{Name: "books", Attributes: []string{"title", "author", "publisher", "year"}},
		{Name: "oddball", Attributes: []string{"telescope aperture", "seismograph reading"}},
	}
}

func build(t *testing.T, opts Options) *System {
	t.Helper()
	sys, err := Build(demoSchemas(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestBuildDiscoversDomains(t *testing.T) {
	sys := build(t, Options{})
	if sys.NumSchemas() != 6 {
		t.Fatalf("NumSchemas = %d", sys.NumSchemas())
	}
	if sys.NumDomains() != 3 {
		t.Fatalf("NumDomains = %d, want 3 (travel, bibliography, oddball)", sys.NumDomains())
	}
	infos := sys.Domains()
	singletons := 0
	for _, d := range infos {
		if d.Unclustered {
			singletons++
			if len(d.Schemas) != 1 || d.Schemas[0].Name != "oddball" {
				t.Fatalf("unexpected singleton: %+v", d)
			}
		}
		for _, m := range d.Schemas {
			if m.Prob <= 0 || m.Prob > 1 {
				t.Fatalf("membership prob %v", m.Prob)
			}
		}
		if len(d.MediatedAttributes) == 0 {
			t.Fatalf("domain %d has no mediated attributes", d.ID)
		}
	}
	if singletons != 1 {
		t.Fatalf("%d singleton domains", singletons)
	}
}

func TestClassifyRouting(t *testing.T) {
	sys := build(t, Options{})
	travelDomain := sys.Model().Clustering.Assign[0]
	bibDomain := sys.Model().Clustering.Assign[3]

	scores := sys.Classify("departure Toronto destination Cairo")
	if scores[0].Domain != travelDomain {
		t.Fatalf("travel query → domain %d, want %d", scores[0].Domain, travelDomain)
	}
	scores = sys.Classify("books authored by Stephen King title")
	if scores[0].Domain != bibDomain {
		t.Fatalf("bibliography query → domain %d, want %d", scores[0].Domain, bibDomain)
	}
	if kw := sys.ClassifyKeywords([]string{"airline", "class"}); kw[0].Domain != travelDomain {
		t.Fatalf("keyword API → domain %d", kw[0].Domain)
	}
}

func TestMediatedAttributes(t *testing.T) {
	sys := build(t, Options{})
	travelDomain := sys.Model().Clustering.Assign[0]
	attrs, err := sys.MediatedAttributes(travelDomain)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(attrs, " ")
	if !strings.Contains(joined, "departure") || !strings.Contains(joined, "destination") {
		t.Fatalf("travel mediated schema = %v", attrs)
	}
	if _, err := sys.MediatedAttributes(99); err == nil {
		t.Fatal("bad domain id accepted")
	}
}

func TestExecuteEndToEnd(t *testing.T) {
	sys := build(t, Options{})
	travelDomain := sys.Model().Clustering.Assign[0]
	attrs, _ := sys.MediatedAttributes(travelDomain)
	var depAttr string
	for _, a := range attrs {
		if strings.Contains(a, "departure") {
			depAttr = a
			break
		}
	}
	if depAttr == "" {
		t.Fatalf("no departure attribute in %v", attrs)
	}

	schemas := demoSchemas()
	sources := make([]Source, len(schemas))
	for i, s := range schemas {
		sources[i] = Source{Schema: s}
	}
	sources[0].Tuples = []Tuple{{"YYZ", "CAI", "AirNorth", "economy"}}
	sources[1].Tuples = []Tuple{{"YYZ", "CAI", "2010-05-01", "2010-05-15"}}
	sources[2].Tuples = []Tuple{{"Toronto", "Cairo", "SkyWays", "900"}}

	res, err := sys.Execute(travelDomain, Query{Select: []string{depAttr}}, sources)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no tuples")
	}
	seen := make(map[string]bool)
	for _, r := range res {
		if r.Prob <= 0 || r.Prob > 1 {
			t.Fatalf("tuple prob %v", r.Prob)
		}
		seen[r.Values[0]] = true
	}
	if !seen["YYZ"] || !seen["Toronto"] {
		t.Fatalf("missing departures: %v", seen)
	}
}

func TestExecuteValidation(t *testing.T) {
	sys := build(t, Options{})
	if _, err := sys.Execute(0, Query{}, nil); err == nil {
		t.Fatal("wrong source count accepted")
	}
	schemas := demoSchemas()
	sources := make([]Source, len(schemas))
	for i, s := range schemas {
		sources[i] = Source{Schema: s}
	}
	sources[0].Schema.Attributes = sources[0].Schema.Attributes[:2]
	travelDomain := sys.Model().Clustering.Assign[0]
	if _, err := sys.Execute(travelDomain, Query{}, sources); err == nil {
		t.Fatal("schema shape mismatch accepted")
	}
}

func TestSkipMediation(t *testing.T) {
	sys := build(t, Options{SkipMediation: true})
	if _, err := sys.MediatedAttributes(0); err == nil {
		t.Fatal("MediatedAttributes should fail with SkipMediation")
	}
	if _, err := sys.Execute(0, Query{}, make([]Source, 6)); err == nil {
		t.Fatal("Execute should fail with SkipMediation")
	}
	// Classification still works.
	if got := sys.Classify("departure destination"); len(got) == 0 {
		t.Fatal("Classify broken with SkipMediation")
	}
}

func TestBuildOptionValidation(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Fatal("empty schema list accepted")
	}
	if _, err := Build(demoSchemas(), Options{TermSimilarity: "bogus"}); err == nil {
		t.Fatal("bogus term similarity accepted")
	}
	if _, err := Build(demoSchemas(), Options{Linkage: "bogus"}); err == nil {
		t.Fatal("bogus linkage accepted")
	}
	if _, err := Build([]Schema{{Name: "x"}}, Options{}); err == nil {
		t.Fatal("invalid schema accepted")
	}
}

func TestAlternativeOptions(t *testing.T) {
	for _, opts := range []Options{
		{Linkage: "min-jaccard"},
		{Linkage: "total-jaccard"},
		{TermSimilarity: "stem"},
		{TermSimilarity: "exact"},
		{TermSimilarity: "lcsubsequence"},
		{ApproximateClassifier: true},
		{TauCSim: 0.3, Theta: 0.1},
		{TermFrequencyFeatures: true},
	} {
		sys, err := Build(demoSchemas(), opts)
		if err != nil {
			t.Fatalf("Build(%+v): %v", opts, err)
		}
		if len(sys.Classify("departure destination")) == 0 {
			t.Fatalf("Classify broken under %+v", opts)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	sys := build(t, Options{})
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumDomains() != sys.NumDomains() || loaded.NumSchemas() != sys.NumSchemas() {
		t.Fatalf("loaded %d domains / %d schemas", loaded.NumDomains(), loaded.NumSchemas())
	}
	for _, q := range []string{"departure destination", "title author", "telescope"} {
		a, b := sys.Classify(q), loaded.Classify(q)
		if len(a) != len(b) {
			t.Fatalf("score counts differ for %q", q)
		}
		for k := range a {
			if a[k].Domain != b[k].Domain || a[k].LogPosterior != b[k].LogPosterior {
				t.Fatalf("query %q: %+v vs %+v", q, a[k], b[k])
			}
		}
	}
	// Mediation must be rebuilt identically.
	for r := 0; r < sys.NumDomains(); r++ {
		wa, _ := sys.MediatedAttributes(r)
		ga, _ := loaded.MediatedAttributes(r)
		if strings.Join(wa, "|") != strings.Join(ga, "|") {
			t.Fatalf("domain %d mediated attrs differ: %v vs %v", r, wa, ga)
		}
	}
}

// failWriter errors after n bytes, exercising Save's error path.
type failWriter struct{ remaining int }

func (w *failWriter) Write(p []byte) (int, error) {
	if len(p) > w.remaining {
		n := w.remaining
		w.remaining = 0
		return n, fmt.Errorf("disk full")
	}
	w.remaining -= len(p)
	return len(p), nil
}

func TestSavePropagatesWriteErrors(t *testing.T) {
	sys := build(t, Options{})
	if err := sys.Save(&failWriter{remaining: 64}); err == nil {
		t.Fatal("write failure swallowed")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestConcurrentClassify(t *testing.T) {
	// A built System is immutable; concurrent classification and execution
	// must be safe (run with -race).
	sys := build(t, Options{})
	schemas := demoSchemas()
	sources := make([]Source, len(schemas))
	for i, s := range schemas {
		sources[i] = Source{Schema: s}
	}
	sources[0].Tuples = []Tuple{{"YYZ", "CAI", "AirNorth", "economy"}}
	travelDomain := sys.Model().Clustering.Assign[0]
	attrs, err := sys.MediatedAttributes(travelDomain)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			queries := []string{"departure destination", "title author", "telescope"}
			for i := 0; i < 50; i++ {
				if len(sys.Classify(queries[(g+i)%len(queries)])) == 0 {
					done <- fmt.Errorf("goroutine %d: no scores", g)
					return
				}
				if _, err := sys.Execute(travelDomain, Query{Select: attrs[:1]}, sources); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestSchemasAccessor(t *testing.T) {
	sys := build(t, Options{})
	if got := sys.Schemas(); len(got) != 6 || got[0].Name != "flights" {
		t.Fatalf("Schemas() = %v", got)
	}
}

// The zero value of Options means "thesis defaults", so an explicit literal
// threshold of 0 is requested with a negative value and garbage thresholds
// must surface as errors instead of being silently repaired.
func TestOptionsZeroSentinels(t *testing.T) {
	def := Options{}.withDefaults()
	if def.TauTSim != 0.8 || def.TauCSim != 0.25 || def.Theta != 0.02 || def.MediationFreqThreshold != 0.1 {
		t.Fatalf("zero options did not resolve to defaults: %+v", def)
	}
	lit := Options{TauTSim: -1, TauCSim: -0.5, Theta: -2, MediationFreqThreshold: -1}.withDefaults()
	if lit.TauTSim != 0 || lit.TauCSim != 0 || lit.Theta != 0 || lit.MediationFreqThreshold != 0 {
		t.Fatalf("negative options did not clamp to literal zero: %+v", lit)
	}
	// NaN is neither a sentinel nor legal: it must pass through untouched so
	// the downstream validator can reject it.
	if got := (Options{TauCSim: math.NaN()}).withDefaults().TauCSim; !math.IsNaN(got) {
		t.Fatalf("NaN TauCSim rewritten to %v", got)
	}
}

func TestLiteralZeroTauCSimMergesEverything(t *testing.T) {
	sys := build(t, Options{TauCSim: -1, SkipMediation: true})
	if sys.NumDomains() != 1 {
		t.Fatalf("τ_c_sim = 0 built %d domains, want 1 (agglomeration runs to a single cluster)", sys.NumDomains())
	}
}

func TestNaNTauCSimRejected(t *testing.T) {
	if _, err := Build(demoSchemas(), Options{TauCSim: math.NaN(), SkipMediation: true}); err == nil {
		t.Fatal("Build accepted a NaN τ_c_sim; it previously merged every schema into one domain")
	}
}

func TestLiteralZeroTauTSim(t *testing.T) {
	// τ_t_sim = 0 makes every pair of terms match, so every schema's feature
	// vector is identical (all ones) and everything clusters together. The
	// point is that -1 survives the two sentinel layers (Options and
	// feature.Config) as a literal 0 instead of being rewritten to 0.8.
	sys := build(t, Options{TauTSim: -1, SkipMediation: true})
	if sys.NumDomains() != 1 {
		t.Fatalf("τ_t_sim = 0 built %d domains, want 1", sys.NumDomains())
	}
}
