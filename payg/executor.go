package payg

import (
	"context"
	"fmt"
	"sync"

	"schemaflow/internal/engine"
	"schemaflow/internal/resilience"
)

// Policy re-exports the resilience policy applied to per-source fetches:
// per-attempt timeout, bounded retries with exponential backoff + jitter,
// and a per-source circuit breaker.
type Policy = resilience.Policy

// DefaultPolicy returns the tuned per-source defaults (2s timeout, 2
// retries, breaker opening after 5 consecutive failures).
func DefaultPolicy() Policy { return resilience.DefaultPolicy() }

// Executor binds a System to a fixed set of data sources under a
// resilience policy. Unlike System.Execute, which builds a fresh engine
// per call, an Executor keeps one engine per domain alive so per-source
// circuit-breaker state persists across queries — a source that keeps
// failing stops being fetched at all until its cooldown elapses. Safe for
// concurrent use.
type Executor struct {
	sys      *System
	fetchers []TupleSource
	policy   Policy

	mu        sync.Mutex
	perDomain map[int]*engine.DomainExecutor
}

// NewExecutor binds the system to one TupleSource per input schema
// (aligned with the schema order passed to Build) under the policy. Use
// resilience.Policy{} to disable timeouts, retries, and breaking.
func (s *System) NewExecutor(fetchers []TupleSource, policy Policy) (*Executor, error) {
	if s.mediated == nil {
		return nil, fmt.Errorf("payg: system built with SkipMediation")
	}
	if len(fetchers) != len(s.schemas) {
		return nil, fmt.Errorf("payg: %d sources for %d schemas", len(fetchers), len(s.schemas))
	}
	for i, f := range fetchers {
		if f == nil {
			return nil, fmt.Errorf("payg: nil source for schema %d", i)
		}
	}
	return &Executor{
		sys:       s,
		fetchers:  fetchers,
		policy:    policy,
		perDomain: make(map[int]*engine.DomainExecutor),
	}, nil
}

// System returns the system the executor is bound to.
func (e *Executor) System() *System { return e.sys }

// Execute answers a structured query over one domain, fanning out to the
// domain's member sources concurrently under ctx and the policy. Sources
// that fail (or whose breaker is open) are reported in Result.Failures
// while the healthy sources' consolidated tuples are returned.
func (e *Executor) Execute(ctx context.Context, domain int, q Query) (*Result, error) {
	ex, err := e.executor(domain)
	if err != nil {
		return nil, err
	}
	return ex.ExecuteContext(ctx, q)
}

// executor returns the lazily built, breaker-carrying engine for domain.
func (e *Executor) executor(domain int) (*engine.DomainExecutor, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if ex, ok := e.perDomain[domain]; ok {
		return ex, nil
	}
	ex, err := e.sys.domainExecutor(domain, func(mem int) (engine.TupleSource, error) {
		return e.fetchers[mem], nil
	})
	if err != nil {
		return nil, err
	}
	ex.SetPolicy(e.policy)
	e.perDomain[domain] = ex
	return ex, nil
}
