package payg

import (
	"context"
	"fmt"
	"sync"

	"schemaflow/internal/engine"
	"schemaflow/internal/resilience"
)

// Policy re-exports the resilience policy applied to per-source fetches:
// per-attempt timeout, bounded retries with exponential backoff + jitter,
// and a per-source circuit breaker.
type Policy = resilience.Policy

// BreakerState re-exports the circuit-breaker state enum for callers
// inspecting per-source health (Manager.BreakerStates).
type BreakerState = resilience.State

// Re-exported breaker states.
const (
	BreakerClosed   = resilience.Closed
	BreakerOpen     = resilience.Open
	BreakerHalfOpen = resilience.HalfOpen
)

// DefaultPolicy returns the tuned per-source defaults (2s timeout, 2
// retries, breaker opening after 5 consecutive failures).
func DefaultPolicy() Policy { return resilience.DefaultPolicy() }

// BreakerPool shares per-source circuit breakers across executors, keyed
// by source name. Successive executors bound to the same pool — e.g.
// before and after an ingestion rebuild swaps the system — see the same
// breaker for the same source, so a source's failure history (and an open
// circuit) survives the swap. Safe for concurrent use.
type BreakerPool struct {
	policy Policy

	mu     sync.Mutex
	byName map[string]*resilience.Breaker
}

// NewBreakerPool returns an empty pool that mints breakers from the
// policy's breaker parameters (no breakers at all when the policy disables
// breaking).
func NewBreakerPool(policy Policy) *BreakerPool {
	return &BreakerPool{policy: policy, byName: make(map[string]*resilience.Breaker)}
}

// Get returns the breaker for a source name, creating it on first use.
// Returns nil when the policy disables breaking. New breakers export their
// state and transitions to the default metrics registry under the source
// name.
func (bp *BreakerPool) Get(name string) *resilience.Breaker {
	if bp.policy.BreakerThreshold <= 0 {
		return nil
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	b, ok := bp.byName[name]
	if !ok {
		b = bp.policy.NewBreaker()
		source := name
		b.WithTransitionHook(func(from, to resilience.State) {
			mBreakerTransitions.With(source, to.String()).Inc()
			mBreakerState.With(source).Set(float64(to))
		})
		mBreakerState.With(source).Set(float64(resilience.Closed))
		bp.byName[name] = b
	}
	return b
}

// States reports every pooled breaker's current state, keyed by source
// name — the per-source health view behind /healthz. Empty (never nil)
// when no breakers exist yet.
func (bp *BreakerPool) States() map[string]BreakerState {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	out := make(map[string]BreakerState, len(bp.byName))
	for name, b := range bp.byName {
		out[name] = b.State()
	}
	return out
}

// Executor binds a System to a fixed set of data sources under a
// resilience policy. Unlike System.Execute, which builds a fresh engine
// per call, an Executor keeps one engine per domain alive so per-source
// circuit-breaker state persists across queries — a source that keeps
// failing stops being fetched at all until its cooldown elapses. Safe for
// concurrent use.
type Executor struct {
	sys      *System
	fetchers []TupleSource
	policy   Policy
	pool     *BreakerPool // nil: each executor allocates fresh breakers

	mu        sync.Mutex
	perDomain map[int]*engine.DomainExecutor
}

// NewExecutor binds the system to one TupleSource per input schema
// (aligned with the schema order passed to Build) under the policy. Use
// resilience.Policy{} to disable timeouts, retries, and breaking.
func (s *System) NewExecutor(fetchers []TupleSource, policy Policy) (*Executor, error) {
	return s.NewExecutorShared(fetchers, policy, nil)
}

// NewExecutorShared is NewExecutor with a shared breaker pool: per-source
// circuit breakers are taken from pool (keyed by source name) instead of
// allocated fresh, so breaker state carries across executors bound to the
// same pool — the mechanism behind zero-downtime model swaps that keep
// failure history. A nil pool behaves like NewExecutor.
func (s *System) NewExecutorShared(fetchers []TupleSource, policy Policy, pool *BreakerPool) (*Executor, error) {
	if s.mediated == nil {
		return nil, fmt.Errorf("payg: system built with SkipMediation")
	}
	if len(fetchers) != len(s.schemas) {
		return nil, fmt.Errorf("payg: %d sources for %d schemas", len(fetchers), len(s.schemas))
	}
	for i, f := range fetchers {
		if f == nil {
			return nil, fmt.Errorf("payg: nil source for schema %d", i)
		}
	}
	if pool != nil {
		// Pre-warm one breaker per source so health and metrics report
		// every source from startup, not only after its first query.
		for _, f := range fetchers {
			pool.Get(f.Name())
		}
	}
	return &Executor{
		sys:       s,
		fetchers:  fetchers,
		policy:    policy,
		pool:      pool,
		perDomain: make(map[int]*engine.DomainExecutor),
	}, nil
}

// System returns the system the executor is bound to.
func (e *Executor) System() *System { return e.sys }

// Execute answers a structured query over one domain, fanning out to the
// domain's member sources concurrently under ctx and the policy. Sources
// that fail (or whose breaker is open) are reported in Result.Failures
// while the healthy sources' consolidated tuples are returned.
func (e *Executor) Execute(ctx context.Context, domain int, q Query) (*Result, error) {
	ex, err := e.executor(domain)
	if err != nil {
		return nil, err
	}
	return ex.ExecuteContext(ctx, q)
}

// executor returns the lazily built, breaker-carrying engine for domain.
func (e *Executor) executor(domain int) (*engine.DomainExecutor, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if ex, ok := e.perDomain[domain]; ok {
		return ex, nil
	}
	ex, err := e.sys.domainExecutor(domain, func(mem int) (engine.TupleSource, error) {
		return e.fetchers[mem], nil
	})
	if err != nil {
		return nil, err
	}
	if e.pool != nil {
		ex.SetPolicyFunc(e.policy, e.pool.Get)
	} else {
		ex.SetPolicy(e.policy)
	}
	e.perDomain[domain] = ex
	return ex, nil
}
