package payg

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"schemaflow/internal/ingest"
	"schemaflow/internal/wal"
)

// This file is the durability layer of the Manager: a write-ahead log for
// accepted arrivals, generation-stamped checkpoint snapshots written
// atomically after every recluster swap, and recovery that restores the
// latest checkpoint and replays the WAL on top.
//
// Data-dir layout (ManagerOptions.DataDir):
//
//	wal.log                    append-only arrival log (internal/wal format)
//	checkpoint-000000012.snap  snapshot at generation 12 (Manager.Save format)
//	checkpoint-000000017.snap  newest checkpoint; older ones are rotation spares
//
// Invariant: every record in wal.log was accepted strictly after the
// newest checkpoint was written, so
//
//	state == newest checkpoint + WAL replayed in order
//
// holds at every instant. The WAL is appended *before* an arrival is
// acked, and truncated only after a newer checkpoint has been fsynced and
// renamed into place — a crash at any point past an ack therefore loses
// nothing that was acked.

const (
	walFileName      = "wal.log"
	checkpointPrefix = "checkpoint-"
	checkpointSuffix = ".snap"
)

// WAL record kinds. Records are individually JSON-encoded (self-framing
// is the WAL's job), so the log survives schema evolution: unknown fields
// are ignored on replay and the kind tag gates dispatch.
const (
	walKindIngest   = "ingest"
	walKindFeedback = "feedback"
)

// walRecord is one durable arrival: an accepted schema or an applied
// feedback batch.
type walRecord struct {
	Kind     string    `json:"kind"`
	Schema   *Schema   `json:"schema,omitempty"`
	Feedback *Feedback `json:"feedback,omitempty"`
}

func encodeWALRecord(rec walRecord) ([]byte, error) {
	p, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("payg: encoding WAL record: %w", err)
	}
	return p, nil
}

// SaveFile writes a snapshot atomically: the bytes land in a temp file in
// the target's directory, are fsynced, and only then renamed over path
// (followed by a directory fsync). A crash mid-save can leave a stray
// temp file but never a torn snapshot under the final name.
func SaveFile(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snap-*.tmp")
	if err != nil {
		return fmt.Errorf("payg: creating temp snapshot in %s: %w", dir, err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("payg: syncing snapshot %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("payg: closing snapshot %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("payg: publishing snapshot %s: %w", path, err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Best effort on filesystems that reject directory fsync.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

// SaveFile atomically writes the system snapshot to path (see the
// package-level SaveFile for the temp-file+fsync+rename contract).
func (s *System) SaveFile(path string) error {
	return SaveFile(path, s.Save)
}

// SaveFile atomically writes the manager snapshot (serving system plus
// pending journal) to path.
func (m *Manager) SaveFile(path string) error {
	return SaveFile(path, m.Save)
}

// checkpointName renders the generation-stamped checkpoint filename.
// Zero-padding keeps lexical order equal to numeric order, which makes
// the layout legible to an operator running plain ls.
func checkpointName(gen int) string {
	return fmt.Sprintf("%s%09d%s", checkpointPrefix, gen, checkpointSuffix)
}

// parseCheckpointName inverts checkpointName; ok is false for filenames
// that are not checkpoints.
func parseCheckpointName(name string) (gen int, ok bool) {
	if len(name) <= len(checkpointPrefix)+len(checkpointSuffix) {
		return 0, false
	}
	if name[:len(checkpointPrefix)] != checkpointPrefix || name[len(name)-len(checkpointSuffix):] != checkpointSuffix {
		return 0, false
	}
	digits := name[len(checkpointPrefix) : len(name)-len(checkpointSuffix)]
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
	}
	if _, err := fmt.Sscanf(digits, "%d", &gen); err != nil {
		return 0, false
	}
	return gen, true
}

// listCheckpoints returns the checkpoint generations present in dir,
// ascending.
func listCheckpoints(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var gens []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if gen, ok := parseCheckpointName(e.Name()); ok {
			gens = append(gens, gen)
		}
	}
	sort.Ints(gens)
	return gens, nil
}

// NewestCheckpoint returns the generation and path of the newest
// checkpoint snapshot in dir. Tools that operate on checkpoints offline —
// the shard splitter, backup verifiers — use it to find the same file
// LoadManagerDir would recover from. The error wraps os.ErrNotExist when
// dir has no checkpoint (or does not exist).
func NewestCheckpoint(dir string) (gen int, path string, err error) {
	gens, err := listCheckpoints(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, "", fmt.Errorf("payg: no checkpoint in %s: %w", dir, os.ErrNotExist)
		}
		return 0, "", fmt.Errorf("payg: scanning data dir %s: %w", dir, err)
	}
	if len(gens) == 0 {
		return 0, "", fmt.Errorf("payg: no checkpoint in %s: %w", dir, os.ErrNotExist)
	}
	gen = gens[len(gens)-1]
	return gen, filepath.Join(dir, checkpointName(gen)), nil
}

// CheckpointFileName renders the canonical generation-stamped checkpoint
// filename ("checkpoint-000000012.snap" for generation 12), for tools that
// write checkpoints a durable manager will later recover.
func CheckpointFileName(gen int) string { return checkpointName(gen) }

// HasCheckpoint reports whether dir holds at least one checkpoint
// snapshot — the switch a serving binary uses to choose between
// bootstrapping a fresh durable manager (NewManager with DataDir) and
// recovering an existing one (LoadManagerDir).
func HasCheckpoint(dir string) (bool, error) {
	gens, err := listCheckpoints(dir)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return len(gens) > 0, nil
}

// pruneCheckpoints removes all but the newest keep checkpoints.
func pruneCheckpoints(dir string, keep int) error {
	if keep < 1 {
		keep = 1
	}
	gens, err := listCheckpoints(dir)
	if err != nil {
		return err
	}
	if len(gens) <= keep {
		return nil
	}
	for _, gen := range gens[:len(gens)-keep] {
		if err := os.Remove(filepath.Join(dir, checkpointName(gen))); err != nil {
			return err
		}
	}
	return nil
}

// LoadManagerDir recovers a durable manager from its data directory: the
// newest checkpoint snapshot is restored and the write-ahead log replayed
// on top, in arrival order, so every arrival acked before the crash is
// present — journaled if it had not reached a checkpoint, clustered if it
// had. Recovery finishes by writing a fresh checkpoint (compacting the
// replayed WAL) and re-attaching the log for new arrivals.
//
// opts.DataDir is implied by dir and may be left empty. A static source
// list is not supported (the recovered schema set no longer aligns with
// one); set opts.ServeData to rebind opts.MakeSource-built sources
// instead.
func LoadManagerDir(dir string, opts ManagerOptions) (*Manager, error) {
	gens, err := listCheckpoints(dir)
	if err != nil {
		return nil, fmt.Errorf("payg: scanning data dir %s: %w", dir, err)
	}
	if len(gens) == 0 {
		return nil, fmt.Errorf("payg: data dir %s holds no checkpoint; bootstrap with NewManager and ManagerOptions.DataDir", dir)
	}
	gen := gens[len(gens)-1]
	f, err := os.Open(filepath.Join(dir, checkpointName(gen)))
	if err != nil {
		return nil, fmt.Errorf("payg: opening checkpoint: %w", err)
	}
	sys, pending, err := LoadWithPending(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("payg: restoring checkpoint generation %d: %w", gen, err)
	}
	opts = opts.withDefaults()
	var sources []TupleSource
	if opts.ServeData {
		sources = make([]TupleSource, 0, sys.NumSchemas())
		for _, sch := range sys.Schemas() {
			sources = append(sources, opts.MakeSource(sch))
		}
	}
	loadOpts := opts
	loadOpts.DataDir = "" // durability is attached below, after replay
	m, err := NewManager(sys, sources, loadOpts)
	if err != nil {
		return nil, err
	}
	for _, sch := range pending {
		a, err := sys.Ingest(sch)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("payg: re-assigning journaled schema %q: %w", sch.Name, err)
		}
		m.journal.Append(journalEntry(sch, a))
	}
	m.setGeneration(gen)
	opts.DataDir = dir
	if err := m.initDurable(opts); err != nil {
		m.Close()
		return nil, err
	}
	return m, nil
}

// LoadManagerAt is LoadManager pinned to a known serving generation: the
// restored state publishes at gen instead of 0. It is the entry point for
// follower bootstrap, where the generation must track the leader's so
// snapshot polling can tell "new" from "seen".
func LoadManagerAt(r io.Reader, gen int, sources []TupleSource, opts ManagerOptions) (*Manager, error) {
	if opts.DataDir != "" {
		return nil, fmt.Errorf("payg: LoadManagerAt does not attach durability; use LoadManagerDir")
	}
	m, err := LoadManager(r, sources, opts)
	if err != nil {
		return nil, err
	}
	m.setGeneration(gen)
	return m, nil
}

// setGeneration republishes the current state at gen. Only used during
// construction and restore, never concurrently with swaps.
func (m *Manager) setGeneration(gen int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.cur.Load()
	m.gen = gen
	m.cur.Store(&managedState{sys: st.sys, exec: st.exec, sources: st.sources, gen: gen})
	mSwapGeneration.Set(float64(gen))
}

// Generation returns the serving generation (lock-free): 0 at build,
// bumped by every atomic swap (rebuild publication, feedback, restore).
// Durable checkpoints and shipped snapshots are stamped with it.
func (m *Manager) Generation() int { return m.cur.Load().gen }

// initDurable opens the WAL in opts.DataDir, replays any records a
// previous process acked but never checkpointed, and attaches the log so
// subsequent arrivals are persisted before their ack. It finishes with a
// checkpoint, which compacts the replayed records away.
func (m *Manager) initDurable(opts ManagerOptions) error {
	if err := os.MkdirAll(opts.DataDir, 0o755); err != nil {
		return fmt.Errorf("payg: creating data dir: %w", err)
	}
	mode, err := wal.ParseSyncMode(opts.FsyncMode)
	if err != nil {
		return err
	}
	l, err := wal.Open(filepath.Join(opts.DataDir, walFileName), wal.Options{Mode: mode, Interval: opts.FsyncInterval})
	if err != nil {
		return err
	}
	if torn := l.TornBytes(); torn > 0 {
		m.opts.Logf("payg: WAL recovery dropped a torn tail of %d bytes (the record being written at crash time; it was never acked)", torn)
	}
	recovered := l.Recovered()
	for i, rec := range recovered {
		if err := m.replayRecord(rec); err != nil {
			l.Close()
			return fmt.Errorf("payg: replaying WAL record %d/%d: %w", i+1, len(recovered), err)
		}
	}
	if len(recovered) > 0 {
		m.opts.Logf("payg: replayed %d WAL record(s) on top of the checkpoint", len(recovered))
	}
	m.mu.Lock()
	m.dataDir = opts.DataDir
	m.retain = opts.CheckpointRetain
	m.wal = l
	mIngestPending.Set(float64(m.journal.Len()))
	// Compact immediately: the replayed records are re-persisted inside
	// this checkpoint, so the log restarts empty.
	m.checkpointLocked()
	m.mu.Unlock()
	return nil
}

// replayRecord applies one WAL record to the recovering manager. Ingest
// records are re-assigned against the current system and journaled
// (without re-logging — they are already in the WAL being replayed);
// feedback records are re-applied, bumping the generation exactly as the
// original apply did.
func (m *Manager) replayRecord(p []byte) error {
	var rec walRecord
	if err := json.Unmarshal(p, &rec); err != nil {
		return fmt.Errorf("decoding: %w", err)
	}
	switch rec.Kind {
	case walKindIngest:
		if rec.Schema == nil {
			return fmt.Errorf("ingest record without schema")
		}
		a, err := m.System().Ingest(*rec.Schema)
		if err != nil {
			return fmt.Errorf("re-assigning %q: %w", rec.Schema.Name, err)
		}
		m.mu.Lock()
		m.journal.Append(journalEntry(*rec.Schema, a))
		mIngestPending.Set(float64(m.journal.Len()))
		m.mu.Unlock()
		return nil
	case walKindFeedback:
		if rec.Feedback == nil {
			return fmt.Errorf("feedback record without payload")
		}
		if _, err := m.applyFeedback(*rec.Feedback, false); err != nil {
			return fmt.Errorf("re-applying feedback: %w", err)
		}
		return nil
	default:
		return fmt.Errorf("unknown record kind %q", rec.Kind)
	}
}

// appendWALLocked persists one record before its arrival is acked.
// Callers hold m.mu. A nil WAL (non-durable manager) accepts everything.
func (m *Manager) appendWALLocked(rec walRecord) error {
	if m.wal == nil {
		return nil
	}
	p, err := encodeWALRecord(rec)
	if err != nil {
		return err
	}
	if err := m.wal.Append(p); err != nil {
		return fmt.Errorf("payg: persisting arrival: %w", err)
	}
	return nil
}

// checkpointLocked writes a generation-stamped snapshot of the serving
// state (system + pending journal) via atomic temp-file+rename, truncates
// the now-redundant WAL, and prunes old checkpoints down to the retention
// budget. Callers hold m.mu, so the (system, journal) pair is consistent.
//
// Failure keeps everything: if the snapshot cannot be written the WAL is
// NOT truncated, so the previous checkpoint plus the intact WAL still
// reconstruct the full state — durability degrades to a longer replay,
// never to data loss.
func (m *Manager) checkpointLocked() {
	if m.wal == nil {
		return
	}
	start := time.Now()
	st := m.cur.Load()
	pending := m.journal.Schemas()
	path := filepath.Join(m.dataDir, checkpointName(m.gen))
	err := SaveFile(path, func(w io.Writer) error {
		return st.sys.saveWithPending(w, pending)
	})
	if err != nil {
		mCheckpointErrors.Inc()
		m.opts.Logf("payg: checkpoint generation %d failed: %v (WAL kept; recovery will replay it)", m.gen, err)
		return
	}
	if err := m.wal.Reset(); err != nil {
		// The checkpoint landed but the WAL keeps its records: recovery
		// would replay arrivals that are already in the checkpoint's
		// journal, duplicating them. Surface loudly; the next successful
		// checkpoint retries the truncation.
		mCheckpointErrors.Inc()
		m.opts.Logf("payg: truncating WAL after checkpoint: %v", err)
	}
	if err := pruneCheckpoints(m.dataDir, m.retain); err != nil {
		m.opts.Logf("payg: pruning old checkpoints: %v", err)
	}
	mCheckpointsWritten.Inc()
	mCheckpointGeneration.Set(float64(m.gen))
	mCheckpointDuration.Observe(time.Since(start).Seconds())
	m.opts.Logf("payg: checkpoint written: generation %d (%d pending in snapshot)", m.gen, len(pending))
}

// SnapshotBytes serializes the serving state (system + pending journal)
// to memory and returns it with the generation it captures — the payload
// GET /admin/snapshot streams to followers. Buffering under the swap lock
// keeps a slow download from pinning the lock.
func (m *Manager) SnapshotBytes() ([]byte, int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.cur.Load()
	var buf bytes.Buffer
	if err := st.sys.saveWithPending(&buf, m.journal.Schemas()); err != nil {
		return nil, 0, err
	}
	return buf.Bytes(), m.gen, nil
}

// Restore replaces the serving state with a snapshot shipped from a
// leader, publishing it at the leader's generation via the usual atomic
// swap — the follower half of snapshot shipping. The restoring manager
// must serve without data sources (followers are read-only). Pending
// schemas in the snapshot are re-assigned and journaled, exactly as
// LoadManager does.
func (m *Manager) Restore(r io.Reader, gen int) error {
	if m.pool != nil {
		return fmt.Errorf("payg: cannot restore into a manager serving data sources")
	}
	sys, pending, err := LoadWithPending(r)
	if err != nil {
		return err
	}
	var entries []ingest.Entry
	for _, sch := range pending {
		a, err := sys.Ingest(sch)
		if err != nil {
			return fmt.Errorf("payg: re-assigning journaled schema %q: %w", sch.Name, err)
		}
		entries = append(entries, journalEntry(sch, a))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("payg: manager closed")
	}
	m.journal = ingest.Journal{}
	for _, e := range entries {
		m.journal.Append(e)
	}
	m.drift.Reset()
	m.gen = gen
	m.cur.Store(&managedState{sys: sys, gen: gen})
	mSwapGeneration.Set(float64(gen))
	mIngestPending.Set(float64(len(entries)))
	mIngestDrift.Set(0)
	return nil
}
