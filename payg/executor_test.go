package payg

import (
	"context"
	"strings"
	"testing"
	"time"

	"schemaflow/internal/engine"
	"schemaflow/internal/resilience"
)

// executorFixture builds a system over demoSchemas with every source
// in-memory except schema 0, which is wrapped in a fault injector.
func executorFixture(t *testing.T, policy Policy) (*Executor, *engine.FlakeSource, int, string) {
	t.Helper()
	sys := build(t, Options{})
	schemas := demoSchemas()
	flake := engine.NewFlakeSource(schemas[0].Name,
		[]Tuple{{"YYZ", "CAI", "AirNorth", "economy"}}, 7)
	fetchers := make([]TupleSource, len(schemas))
	fetchers[0] = flake
	for i := 1; i < len(schemas); i++ {
		fetchers[i] = Source{Schema: schemas[i]}
	}
	ex, err := sys.NewExecutor(fetchers, policy)
	if err != nil {
		t.Fatal(err)
	}
	travelDomain := sys.Model().Clustering.Assign[0]
	attrs, err := sys.MediatedAttributes(travelDomain)
	if err != nil {
		t.Fatal(err)
	}
	var dep string
	for _, a := range attrs {
		if strings.Contains(a, "departure") {
			dep = a
			break
		}
	}
	if dep == "" {
		t.Fatalf("no departure attribute in %v", attrs)
	}
	return ex, flake, travelDomain, dep
}

func TestExecutorHealthyPath(t *testing.T) {
	ex, _, domain, dep := executorFixture(t, DefaultPolicy())
	res, err := ex.Execute(context.Background(), domain, Query{Select: []string{dep}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded() {
		t.Fatalf("degraded: %+v", res.Failures)
	}
	seen := false
	for _, r := range res.Tuples {
		if r.Values[0] == "YYZ" {
			seen = true
		}
	}
	if !seen {
		t.Fatalf("flake source's tuple missing from %+v", res.Tuples)
	}
}

func TestExecutorBreakerPersistsAcrossQueries(t *testing.T) {
	policy := Policy{
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
	}
	ex, flake, domain, dep := executorFixture(t, policy)
	flake.SetDown(true)
	q := Query{Select: []string{dep}}

	for i := 0; i < 2; i++ {
		res, err := ex.Execute(context.Background(), domain, q)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Degraded() {
			t.Fatalf("query %d: not degraded", i)
		}
	}
	// Breaker state survives into the next query: the source is skipped
	// without a fetch.
	calls := flake.Calls()
	res, err := ex.Execute(context.Background(), domain, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 || !res.Failures[0].Skipped {
		t.Fatalf("failures = %+v, want a breaker skip", res.Failures)
	}
	if flake.Calls() != calls {
		t.Fatal("open breaker did not persist across Executor queries")
	}
}

func TestExecutorValidation(t *testing.T) {
	sys := build(t, Options{})
	if _, err := sys.NewExecutor(make([]TupleSource, 2), DefaultPolicy()); err == nil {
		t.Fatal("wrong fetcher count accepted")
	}
	fetchers := make([]TupleSource, len(demoSchemas()))
	if _, err := sys.NewExecutor(fetchers, DefaultPolicy()); err == nil {
		t.Fatal("nil fetcher accepted")
	}

	skip := build(t, Options{SkipMediation: true})
	srcs := make([]TupleSource, len(demoSchemas()))
	for i, s := range demoSchemas() {
		srcs[i] = Source{Schema: s}
	}
	if _, err := skip.NewExecutor(srcs, DefaultPolicy()); err == nil {
		t.Fatal("SkipMediation system accepted")
	}

	ex, _, _, _ := executorFixture(t, resilience.Policy{})
	if _, err := ex.Execute(context.Background(), 99, Query{Select: []string{"x"}}); err == nil {
		t.Fatal("bad domain accepted")
	}
}
