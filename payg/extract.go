package payg

import (
	"io"

	"schemaflow/internal/extract"
)

// Schema extraction front ends (Section 6.1.1 of the thesis / Figure 6.1):
// the extractors turn raw structured sources into the Schema values Build
// consumes.

// ExtractForms extracts one schema per HTML <form> in the document (the
// deep-web case): attribute names come from field labels, placeholders, and
// humanized field names. sourceName seeds the schema names.
func ExtractForms(r io.Reader, sourceName string) ([]Schema, error) {
	return extract.Forms(r, sourceName)
}

// ExtractTables extracts one schema per HTML <table> with header cells.
func ExtractTables(r io.Reader, sourceName string) ([]Schema, error) {
	return extract.Tables(r, sourceName)
}

// ExtractSpreadsheet extracts the column-header schema of a CSV/TSV export,
// skipping title rows and rejecting all-numeric pseudo-headers.
func ExtractSpreadsheet(r io.Reader, sourceName string) ([]Schema, error) {
	return extract.Spreadsheet(r, sourceName)
}

// ExtractNTriples extracts one schema per rdf:type from an RDF N-Triples
// dump, using predicate local names as attribute names.
func ExtractNTriples(r io.Reader, sourceName string) ([]Schema, error) {
	return extract.NTriples(r, sourceName)
}
