package payg

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"
	"time"

	"schemaflow/internal/dataset"
	"schemaflow/internal/eval"
)

// buildBenchArtifact gates TestBuildBenchArtifact, which sweeps corpus
// sizes through the blocked (LSH + sparse HAC) and exact build paths and
// renders the comparison to BENCH_build.json (make bench-build).
var (
	buildBenchArtifact = flag.Bool("bench-build-artifact", false, "write the offline-build scaling artifact")
	buildBenchOut      = flag.String("bench-build-out", "../BENCH_build.json", "output path for the build benchmark artifact")
)

// exactBuildMaxN bounds the O(n²) exact arm of the sweep. Past 10k schemas
// the dense pipeline takes long enough that the sweep only runs the blocked
// arm and reports absolute time.
const exactBuildMaxN = 10000

type buildBenchRow struct {
	N                 int     `json:"n"`
	Domains           int     `json:"domains"`
	BlockedSeconds    float64 `json:"blocked_seconds"`
	CandidatePairs    int64   `json:"candidate_pairs"`
	CandidateFraction float64 `json:"candidate_fraction"`
	BlockedDomains    int     `json:"blocked_domains"`
	ExactSeconds      float64 `json:"exact_seconds,omitempty"`
	Speedup           float64 `json:"speedup,omitempty"`
	PairwiseF1        float64 `json:"pairwise_f1,omitempty"`
}

// TestBuildBenchArtifact measures the offline build at increasing corpus
// sizes. Both arms share the corpus and skip mediated-schema extraction so
// the comparison isolates features + candidates + clustering + domains.
//
//	go test ./payg -run TestBuildBenchArtifact -bench-build-artifact=true -timeout 2h
//
// By default only the smallest size runs (CI smoke); set
// PAYG_BENCH_BUILD_FULL=1 for the full {2k, 10k, 50k, 100k} sweep.
func TestBuildBenchArtifact(t *testing.T) {
	if !*buildBenchArtifact {
		t.Skip("set -bench-build-artifact to regenerate BENCH_build.json")
	}
	sizes := []int{2000}
	full := os.Getenv("PAYG_BENCH_BUILD_FULL") == "1"
	if full {
		sizes = []int{2000, 10000, 50000, 100000}
	}

	var rows []buildBenchRow
	for _, n := range sizes {
		set := dataset.Large(dataset.LargeConfig{N: n, Seed: 42})
		row := buildBenchRow{N: n, Domains: n / 200}

		start := time.Now()
		blocked, err := Build(set, Options{SkipMediation: true, CandidateGen: "lsh"})
		if err != nil {
			t.Fatalf("blocked build at n=%d: %v", n, err)
		}
		row.BlockedSeconds = time.Since(start).Seconds()
		row.CandidatePairs = int64(mBuildCandidatePairs.Value())
		row.CandidateFraction = mBuildCandidateFraction.Value()
		row.BlockedDomains = blocked.NumDomains()
		t.Logf("n=%d blocked: %.2fs, %d candidate pairs (%.4f%% of n²/2), %d domains",
			n, row.BlockedSeconds, row.CandidatePairs, 100*row.CandidateFraction, row.BlockedDomains)

		if n <= exactBuildMaxN {
			start = time.Now()
			exact, err := Build(set, Options{SkipMediation: true, CandidateGen: "exact"})
			if err != nil {
				t.Fatalf("exact build at n=%d: %v", n, err)
			}
			row.ExactSeconds = time.Since(start).Seconds()
			row.Speedup = row.ExactSeconds / row.BlockedSeconds
			row.PairwiseF1 = eval.PairwiseF1(
				blocked.Model().Clustering.Assign, exact.Model().Clustering.Assign)
			t.Logf("n=%d exact: %.2fs (%.1fx slower than blocked), pairwise F1 %.4f",
				n, row.ExactSeconds, row.Speedup, row.PairwiseF1)
			if row.PairwiseF1 < 0.95 {
				t.Errorf("n=%d: blocked-vs-exact pairwise F1 %.4f < 0.95", n, row.PairwiseF1)
			}
		}
		rows = append(rows, row)
	}

	artifact := struct {
		Description string          `json:"description"`
		GoVersion   string          `json:"go_version"`
		NumCPU      int             `json:"num_cpu"`
		Corpus      string          `json:"corpus"`
		FullSweep   bool            `json:"full_sweep"`
		Rows        []buildBenchRow `json:"rows"`
	}{
		Description: "Offline build scaling: MinHash-LSH blocked pipeline vs exact all-pairs pipeline (SkipMediation, defaults otherwise)",
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Corpus:      "dataset.Large, domains = n/200, seed 42",
		FullSweep:   full,
		Rows:        rows,
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*buildBenchOut, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d sizes)", *buildBenchOut, len(rows))
}
