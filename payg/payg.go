// Package payg is the public API of schemaflow: a multi-domain
// pay-as-you-go data integration system following Mahmoud & Aboulnaga
// (SIGMOD 2010).
//
// Given nothing but a collection of single-table schemas (sets of attribute
// names), Build produces a System that has:
//
//   - clustered the schemas into domains, fully automatically, handling
//     boundary schemas with a probabilistic membership model;
//   - mediated each domain into a mediated schema with probabilistic
//     mappings from every member source;
//   - constructed a naive Bayesian query classifier that routes keyword
//     queries to their most relevant domains.
//
// The typical use case (the thesis' Section 3.3): call Classify with a user
// keyword query to obtain ranked domains, show the top domains' mediated
// schemas as structured query interfaces, then Execute a structured query
// against a chosen domain to retrieve probability-ranked tuples.
//
// # Serving online: the Manager lifecycle
//
// A System is immutable once built. Long-running deployments wrap it in a
// Manager, which owns the current serving generation and moves it through
// a small state machine:
//
//	serving(gen N) --Ingest--> serving(gen N) + pending journal
//	      |                          |
//	      |              drift / interval / Recluster
//	      |                          v
//	      |                  rebuilding(base N)        (single flight)
//	      |                          |
//	      |        +-----------------+------------------+
//	      |        v                                    v
//	serving(gen N+1), journal drained       result discarded (base ≠ gen),
//	  [rebuild published]                     journal kept for next flight
//
// Ingest assigns an arriving schema against the current generation
// (read-only, Algorithm 3) and journals it as pending. A background
// rebuild — triggered by assignment-quality drift, a configured interval,
// or an explicit Recluster — reclusters serving ∪ pending from scratch on
// a copy, then publishes by an atomic pointer swap; Classify/Execute
// traffic never blocks on it. ApplyFeedback swaps the same pointer, which
// is why every swap bumps a generation: a rebuild whose base generation
// went stale discards its result rather than clobber the edit, and the
// journal survives for the next flight. Per-source circuit-breaker state
// carries across swaps via a shared BreakerPool keyed by source name.
//
// Build phases, ingest/rebuild flow, breaker transitions, and query
// outcomes are all instrumented on the internal/obs default registry,
// which the HTTP server exposes at /metrics (see docs/METRICS.md).
package payg

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"schemaflow/internal/ann"
	"schemaflow/internal/candgen"
	"schemaflow/internal/classify"
	"schemaflow/internal/cluster"
	"schemaflow/internal/core"
	"schemaflow/internal/engine"
	"schemaflow/internal/feature"
	"schemaflow/internal/mediate"
	"schemaflow/internal/schema"
	"schemaflow/internal/strsim"
	"schemaflow/internal/terms"
)

// Schema is a single-table schema: a named set of attribute names,
// optionally labeled with ground-truth domains for evaluation.
type Schema = schema.Schema

// Score is one ranked domain returned by Classify.
type Score = classify.Score

// Query is a structured query over a domain's mediated schema.
type Query = engine.Query

// ResultTuple is one probability-ranked tuple of a query result.
type ResultTuple = engine.ResultTuple

// Source is a data source: a schema plus its tuples.
type Source = engine.Source

// TupleSource abstracts where a source's tuples come from (remote, slow,
// failing); the in-memory Source satisfies it.
type TupleSource = engine.TupleSource

// Result is a possibly degraded query answer: consolidated tuples plus a
// report of the sources that failed to contribute.
type Result = engine.Result

// SourceFailure describes one source that contributed nothing to a query.
type SourceFailure = engine.SourceFailure

// Tuple is one raw row of a data source.
type Tuple = engine.Tuple

// Options configures Build. The zero value selects the thesis' defaults.
//
// For the float thresholds (TauTSim, TauCSim, Theta,
// MediationFreqThreshold) a value of 0 means "use the default", because the
// zero value of this struct must behave like DefaultOptions. A literal
// threshold of 0 is nonetheless meaningful (τ_c_sim = 0 merges every
// schema; θ = 0 disables the uncertainty band); to request it, pass any
// negative value — withDefaults clamps negatives to exactly 0 instead of
// substituting the default.
type Options struct {
	// TauTSim is the term-similarity threshold τ_t_sim (default 0.8;
	// negative means a literal 0 — every pair of terms matches).
	TauTSim float64
	// TermSimilarity selects t_sim: "lcs" (default), "stem", "exact", or
	// "lcsubsequence".
	TermSimilarity string
	// TauCSim is the clustering stop / membership threshold τ_c_sim
	// (default 0.25; the thesis recommends 0.2–0.3; negative means a
	// literal 0 — agglomeration runs until a single cluster remains).
	TauCSim float64
	// Linkage selects c_sim: "avg-jaccard" (default), "min-jaccard",
	// "max-jaccard", or "total-jaccard".
	Linkage string
	// Theta is the membership uncertainty width θ (default 0.02; negative
	// means a literal 0 — no membership is treated as uncertain).
	Theta float64
	// ExactClassifier forces the exact subset-enumeration classifier;
	// by default domains with more than 20 uncertain schemas fall back to
	// the approximate rule.
	ExactClassifier bool
	// ApproximateClassifier selects the linear-time approximate classifier
	// for every domain.
	ApproximateClassifier bool
	// SkipMediation skips building mediated schemas and mappings; Classify
	// still works, Execute does not.
	SkipMediation bool
	// TermFrequencyFeatures switches from the thesis' binary feature
	// vectors to term-frequency counts with generalized Jaccard — the
	// §4.1 alternative, provided for comparison.
	TermFrequencyFeatures bool
	// MediationFreqThreshold is the attribute frequency threshold for
	// mediated schemas (default 0.1).
	MediationFreqThreshold float64

	// CandidateGen selects how the clustering stage finds pairs worth
	// comparing: "auto" (default — exact below CandidateAutoMin schemas,
	// MinHash-LSH blocking at or above it), "exact" (always the dense
	// all-pairs HAC), or "lsh" (always the blocked sub-quadratic path).
	// The blocked path skips the O(n²) similarity memo and clusters over
	// a sparse candidate-pair set; see docs/DESIGN.md.
	CandidateGen string
	// LSHBands and LSHRows shape the MinHash signature: LSHBands bands of
	// LSHRows rows each (defaults 128 and 2). The defaults put the
	// banding threshold at (1/128)^(1/2) ≈ 0.09 — deliberately well below
	// τ_c_sim = 0.25, because average linkage needs the low-similarity
	// pairs too: a pair at 0.1 never merges on its own but still pulls
	// cluster-to-cluster averages, and dropping it skews merge decisions
	// near the threshold.
	LSHBands int
	LSHRows  int
	// CandidateThreshold drops LSH candidate pairs whose signature-
	// estimated Jaccard falls below it. The default 0 keeps every banding
	// collision (recommended for average and total linkage, which are
	// sensitive to missing low-similarity pairs); raise it to shrink the
	// pairwise pass when memory is tight. Negative also means 0.
	CandidateThreshold float64
	// CandidateAutoMin is the schema count at which CandidateGen "auto"
	// switches from the exact to the blocked path (default 4096). Below
	// it the dense path is both fast and bit-exact, so auto never trades
	// accuracy for speed on corpora where exact is cheap.
	CandidateAutoMin int
	// Workers bounds the goroutines used by the blocked path's pairwise
	// and clustering stages. Zero means GOMAXPROCS. Results do not depend
	// on it.
	Workers int

	// Vectorizer selects the embedding backend: "term" (default — the
	// thesis' term-match space: exact scoring over every domain, MinHash-
	// LSH candidate generation on the blocked path) or "ngram" (dense
	// hashed character-3-gram embeddings with an HNSW ANN index: ANN
	// candidate pairs, and ANN-pruned assignment and classification —
	// shortlist approximately, verify exactly). The term backend is
	// bit-identical to builds that predate backends.
	Vectorizer string
	// ANNM is the HNSW graph degree for the ngram backend (0 means 16;
	// ignored by the term backend).
	ANNM int
	// ANNEfSearch is the HNSW search beam width for the ngram backend
	// (0 means 64; ignored by the term backend).
	ANNEfSearch int
	// ANNShortlistK is how many nearest schemas the ngram backend
	// shortlists before exact verification of classification and
	// incremental assignment. Zero means 32; negative disables pruning
	// (the ngram backend then only accelerates candidate generation).
	// Ignored by the term backend.
	ANNShortlistK int
}

// withDefaults resolves the zero-value sentinels: 0 becomes the documented
// default, negative values become a literal 0 (see the Options doc), and
// anything else passes through untouched (including NaN and out-of-range
// values, which the downstream validators reject with an error rather than
// silently repairing).
func (o Options) withDefaults() Options {
	def := func(v, d float64) float64 {
		switch {
		case v == 0:
			return d
		case v < 0:
			return 0
		}
		return v
	}
	o.TauTSim = def(o.TauTSim, 0.8)
	o.TauCSim = def(o.TauCSim, 0.25)
	o.Theta = def(o.Theta, 0.02)
	o.MediationFreqThreshold = def(o.MediationFreqThreshold, 0.1)
	if o.TermSimilarity == "" {
		o.TermSimilarity = "lcs"
	}
	if o.Linkage == "" {
		o.Linkage = "avg-jaccard"
	}
	if o.CandidateGen == "" {
		o.CandidateGen = "auto"
	}
	if o.LSHBands == 0 {
		o.LSHBands = 128
	}
	if o.LSHRows == 0 {
		o.LSHRows = 2
	}
	if o.CandidateThreshold < 0 {
		o.CandidateThreshold = 0
	}
	if o.CandidateAutoMin == 0 {
		o.CandidateAutoMin = 4096
	}
	if o.Vectorizer == "" {
		o.Vectorizer = "term"
	}
	switch {
	case o.ANNShortlistK == 0:
		o.ANNShortlistK = 32
	case o.ANNShortlistK < 0:
		o.ANNShortlistK = 0
	}
	return o
}

// candgenConfig is the MinHash-LSH tuning the blocked build path has always
// used; the term backend carries it so its candidate pairs stay
// bit-identical to pre-backend builds.
func (o Options) candgenConfig() candgen.Config {
	return candgen.Config{
		Bands:     o.LSHBands,
		Rows:      o.LSHRows,
		Threshold: o.CandidateThreshold,
		Workers:   o.Workers,
	}
}

// newVectorizer constructs an unfitted backend from the resolved options.
// Every System owns a private fitted instance (fitting binds it to that
// system's feature space), so rebuilds never mutate a backend another
// generation is serving from.
func (o Options) newVectorizer() (feature.Vectorizer, error) {
	switch o.Vectorizer {
	case "term":
		return feature.NewTermVectorizer(o.candgenConfig()), nil
	case "ngram":
		return feature.NewNGramVectorizer(feature.NGramConfig{
			ANN: ann.Config{M: o.ANNM, EfSearch: o.ANNEfSearch},
		}), nil
	default:
		return nil, fmt.Errorf("payg: unknown vectorizer %q (want term or ngram)", o.Vectorizer)
	}
}

// useBlockedPath decides, after withDefaults, whether a build of n schemas
// takes the sub-quadratic blocked pipeline.
func (o Options) useBlockedPath(n int) (bool, error) {
	switch o.CandidateGen {
	case "exact":
		return false, nil
	case "lsh":
		return true, nil
	case "auto":
		return n >= o.CandidateAutoMin, nil
	default:
		return false, fmt.Errorf("payg: unknown candidate generator %q (want auto, exact, or lsh)", o.CandidateGen)
	}
}

func (o Options) termSim() (strsim.TermSim, error) {
	switch o.TermSimilarity {
	case "lcs":
		return strsim.LCSSim{}, nil
	case "stem":
		return strsim.StemSim{}, nil
	case "exact":
		return strsim.ExactSim{}, nil
	case "lcsubsequence":
		return strsim.LCSeqSim{}, nil
	default:
		return nil, fmt.Errorf("payg: unknown term similarity %q", o.TermSimilarity)
	}
}

// DomainInfo summarizes one discovered domain for presentation.
type DomainInfo struct {
	// ID is the domain identifier used by Classify and Execute.
	ID int
	// Schemas lists member schema names with membership probabilities.
	Schemas []DomainMember
	// MediatedAttributes are the mediated schema's attribute names (empty
	// when mediation was skipped).
	MediatedAttributes []string
	// Unclustered is true for a singleton domain (one schema that matched
	// nothing else).
	Unclustered bool
}

// DomainMember is one schema's membership in a domain.
type DomainMember struct {
	Name string
	Prob float64
}

// System is a built pay-as-you-go integration system. It is immutable and
// safe for concurrent use once Build returns.
type System struct {
	opts       Options
	schemas    schema.Set
	space      *feature.Space
	model      *core.Model
	classifier *classify.Classifier
	mediated   []*mediate.Mediated

	// vectorizer is the fitted embedding backend (see Options.Vectorizer).
	// It is bound to space and immutable once the System is published;
	// rebuilds fit a fresh instance.
	vectorizer feature.Vectorizer

	// local / localSet are set only on sharded systems (see Shard): the
	// sorted domain ids held locally and the same set as a bitmap over the
	// global id range. Nil on a full system, where every domain is local.
	local    []int
	localSet []bool
}

// Build runs the full pipeline: feature vectors → hierarchical clustering →
// probabilistic domains → per-domain mediation → classifier construction.
func Build(schemas []Schema, opts Options) (*System, error) {
	return BuildContext(context.Background(), schemas, opts)
}

// BuildContext is Build with cooperative cancellation: ctx is checked
// between pipeline stages (feature-space construction, clustering, domain
// assignment, classifier setup, and each domain's mediation), so a caller
// abandoning a long rebuild — e.g. the ingestion manager shutting down —
// gets ctx.Err() back promptly instead of paying for the whole pipeline.
func BuildContext(ctx context.Context, schemas []Schema, opts Options) (*System, error) {
	opts = opts.withDefaults()
	if len(schemas) == 0 {
		return nil, fmt.Errorf("payg: no schemas")
	}
	set := schema.Set(schemas)
	for i := range set {
		if err := set[i].Validate(); err != nil {
			return nil, fmt.Errorf("payg: %w", err)
		}
	}
	method, err := cluster.ParseMethod(opts.Linkage)
	if err != nil {
		return nil, err
	}
	fcfg, err := opts.featureConfig()
	if err != nil {
		return nil, err
	}

	blocked, err := opts.useBlockedPath(len(set))
	if err != nil {
		return nil, err
	}
	vec, err := opts.newVectorizer()
	if err != nil {
		return nil, err
	}

	// Each pipeline phase reports its wall-clock cost to the metrics
	// registry, so an operator can compare full-rebuild phases against the
	// incremental ingest path from the same /metrics scrape.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var sp *feature.Space
	var model *core.Model
	if blocked {
		sp, _, model, err = buildBlocked(ctx, set, fcfg, method, opts, vec)
	} else {
		sp, _, model, err = buildExact(ctx, set, fcfg, method, opts)
	}
	if err != nil {
		return nil, err
	}
	// The blocked path fits the vectorizer before candidate generation;
	// the exact path never called it, so fit here.
	if !blocked {
		t := time.Now()
		if err := vec.Fit(sp); err != nil {
			return nil, err
		}
		mBuildPhase.With("vectorizer").Observe(time.Since(t).Seconds())
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ccfg := classify.Config{}
	if opts.ApproximateClassifier {
		ccfg.Mode = classify.Approximate
	}
	if opts.ExactClassifier {
		ccfg.MaxExactUncertain = -1
	}
	t := time.Now()
	cls, err := classify.New(model, ccfg)
	if err != nil {
		return nil, err
	}
	mBuildPhase.With("classifier").Observe(time.Since(t).Seconds())

	sys := &System{opts: opts, schemas: set, space: sp, model: model, classifier: cls, vectorizer: vec}
	if !opts.SkipMediation {
		if err := sys.buildMediationContext(ctx); err != nil {
			return nil, err
		}
	}
	return sys, nil
}

// featureConfig translates the options into the feature-space config used
// by Build, AddSchema, and incremental ingestion.
func (o Options) featureConfig() (feature.Config, error) {
	ts, err := o.termSim()
	if err != nil {
		return feature.Config{}, err
	}
	cfg := feature.Config{
		TermOpts: terms.DefaultOptions(),
		Sim:      ts,
		Tau:      o.TauTSim,
	}
	if o.TauTSim == 0 {
		// withDefaults already resolved this struct's sentinels, so a zero
		// here is a requested literal threshold; pass feature.Config's own
		// negative escape hatch so its zero-means-default rule keeps it.
		cfg.Tau = -1
	}
	if o.TermFrequencyFeatures {
		cfg.Mode = feature.TermFrequency
	}
	return cfg, nil
}

// buildExact is the thesis pipeline: precompute all O(n²) pairwise
// similarities, run the dense agglomerative clustering, and assign domains
// against the full similarity matrix.
func buildExact(ctx context.Context, set schema.Set, fcfg feature.Config, method cluster.Method, opts Options) (*feature.Space, *cluster.Result, *core.Model, error) {
	mBuildMode.With("exact").Inc()
	t := time.Now()
	sp, err := feature.BuildContext(ctx, set, fcfg)
	if err != nil {
		return nil, nil, nil, err
	}
	mBuildPhase.With("features").Observe(time.Since(t).Seconds())
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, err
	}
	t = time.Now()
	cl, err := cluster.AgglomerativeContext(ctx, sp, cluster.NewLinkage(method), opts.TauCSim)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("payg: %w", err)
	}
	mBuildPhase.With("cluster").Observe(time.Since(t).Seconds())
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, err
	}
	t = time.Now()
	model, err := core.AssignDomains(set, sp, cl, core.Options{TauCSim: opts.TauCSim, Theta: opts.Theta})
	if err != nil {
		return nil, nil, nil, err
	}
	mBuildPhase.With("domains").Observe(time.Since(t).Seconds())
	return sp, cl, model, nil
}

// buildBlocked is the sub-quadratic pipeline for large corpora: a lite
// feature space (no O(n²) similarity memo), backend candidate generation
// (MinHash-LSH on the term backend, ANN neighbors on the ngram backend),
// exact similarities over only the candidates, sparse agglomerative
// clustering, and sparse domain assignment. Every stage honors ctx and fans
// out across opts.Workers.
func buildBlocked(ctx context.Context, set schema.Set, fcfg feature.Config, method cluster.Method, opts Options, vec feature.Vectorizer) (*feature.Space, *cluster.Result, *core.Model, error) {
	mBuildMode.With("blocked").Inc()
	n := len(set)
	t := time.Now()
	sp := feature.BuildLite(set, fcfg)
	mBuildPhase.With("features").Observe(time.Since(t).Seconds())
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, err
	}
	t = time.Now()
	if err := vec.Fit(sp); err != nil {
		return nil, nil, nil, err
	}
	mBuildPhase.With("vectorizer").Observe(time.Since(t).Seconds())

	// Candidate generation is the backend's call: the term backend runs
	// MinHash-LSH over the binary feature vectors (in term-frequency mode
	// those are the binary projection — the exact generalized-Jaccard
	// similarity decides in the next stage); the ngram backend proposes
	// each schema's ANN neighbors.
	t = time.Now()
	pairs, err := vec.CandidatePairs(ctx)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("payg: candidate generation: %w", err)
	}
	d := time.Since(t)
	mBuildPhase.With("candidates").Observe(d.Seconds())
	mBuildCandidateDuration.Observe(d.Seconds())
	mBuildCandidatePairs.Set(float64(len(pairs)))
	if n > 1 {
		mBuildCandidateFraction.Set(float64(len(pairs)) / (float64(n) * float64(n-1) / 2))
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	mBuildHACWorkers.Set(float64(workers))

	t = time.Now()
	ps, err := cluster.PairwiseSims(ctx, sp, pairs, opts.Workers)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("payg: pairwise similarities: %w", err)
	}
	mBuildPhase.With("pairwise").Observe(time.Since(t).Seconds())

	t = time.Now()
	cl, err := cluster.AgglomerativeSparse(ctx, sp, cluster.NewLinkage(method), opts.TauCSim, ps,
		cluster.SparseOptions{Workers: opts.Workers})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("payg: %w", err)
	}
	mBuildPhase.With("cluster").Observe(time.Since(t).Seconds())
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, err
	}

	t = time.Now()
	model, err := core.AssignDomainsSparse(set, sp, cl, ps, core.Options{TauCSim: opts.TauCSim, Theta: opts.Theta})
	if err != nil {
		return nil, nil, nil, err
	}
	mBuildPhase.With("domains").Observe(time.Since(t).Seconds())
	return sp, cl, model, nil
}

func (s *System) buildMediation() error {
	return s.buildMediationContext(context.Background())
}

func (s *System) buildMediationContext(ctx context.Context) error {
	start := time.Now()
	defer func() { mBuildPhase.With("mediation").Observe(time.Since(start).Seconds()) }()
	mopts := mediate.DefaultOptions()
	mopts.FreqThreshold = s.opts.MediationFreqThreshold
	ts, err := s.opts.termSim()
	if err != nil {
		return err
	}
	mopts.TermSim = ts
	mopts.TermTau = s.opts.TauTSim

	s.mediated = make([]*mediate.Mediated, s.model.NumDomains())
	for r := range s.model.Domains {
		if err := ctx.Err(); err != nil {
			return err
		}
		if s.localSet != nil && !s.localSet[r] {
			continue // remote domain: another shard owns its mediation
		}
		var members schema.Set
		for _, mem := range s.model.Domains[r].Members {
			members = append(members, s.schemas[mem.Schema])
		}
		med, err := mediate.Build(members, mopts)
		if err != nil {
			return fmt.Errorf("payg: mediating domain %d: %w", r, err)
		}
		s.mediated[r] = med
	}
	return nil
}

// NumDomains returns the number of discovered domains (including singleton
// domains of unclustered schemas).
func (s *System) NumDomains() int { return s.model.NumDomains() }

// NumSchemas returns the number of input schemas.
func (s *System) NumSchemas() int { return len(s.schemas) }

// Domains describes every discovered domain.
func (s *System) Domains() []DomainInfo {
	out := make([]DomainInfo, 0, s.model.NumDomains())
	for r := range s.model.Domains {
		if s.localSet != nil && !s.localSet[r] {
			continue // a shard lists only the domains it owns
		}
		d := &s.model.Domains[r]
		info := DomainInfo{ID: r, Unclustered: len(d.Cluster) == 1}
		for _, mem := range d.Members {
			info.Schemas = append(info.Schemas, DomainMember{Name: s.schemas[mem.Schema].Name, Prob: mem.Prob})
		}
		if s.mediated != nil && s.mediated[r] != nil {
			for _, a := range s.mediated[r].Attrs {
				info.MediatedAttributes = append(info.MediatedAttributes, a.Name)
			}
		}
		out = append(out, info)
	}
	return out
}

// Classify ranks domains by relevance to a free-text keyword query and
// returns them best first. The query string is split on whitespace. With a
// pruning backend (ngram), only the shortlisted domains are scored — each
// returned score is exactly what the full classifier computes for that
// domain, so the ranking among returned domains is exact; domains the
// shortlist missed are simply absent.
func (s *System) Classify(query string) []Score {
	return s.ClassifyKeywords(strings.Fields(query))
}

// ClassifyKeywords ranks domains for an already-tokenized query; see
// Classify for pruning-backend semantics.
func (s *System) ClassifyKeywords(keywords []string) []Score {
	if doms := s.shortlistDomains(keywords); doms != nil {
		return s.classifier.ClassifySubset(keywords, doms)
	}
	return s.classifier.Classify(keywords)
}

// shortlistDomains asks the backend for the query's ANN schema shortlist
// and maps it to the domains holding those schemas (probabilistic members
// included). nil means no pruning: score every domain, the exact path.
func (s *System) shortlistDomains(keywords []string) []int {
	if s.vectorizer == nil {
		return nil
	}
	sl := s.vectorizer.Shortlist(s.space.QueryTerms(keywords), s.opts.ANNShortlistK)
	if sl == nil {
		return nil
	}
	seen := make(map[int]bool)
	var doms []int
	for _, si := range sl {
		for _, mem := range s.model.DomainsOf(si) {
			if !seen[mem.Schema] {
				seen[mem.Schema] = true
				doms = append(doms, mem.Schema)
			}
		}
	}
	return doms
}

// ClassifyBatch ranks domains for many tokenized queries with bounded
// CPU-parallel fan-out, returning one ranking per query in input order.
// Results are identical to calling ClassifyKeywords per query.
func (s *System) ClassifyBatch(queries [][]string) [][]Score {
	if s.vectorizer == nil || s.vectorizer.Shortlist(nil, s.opts.ANNShortlistK) == nil {
		// Exact backend (or pruning disabled): the classifier's own batch
		// path shares scratch state and one flat allocation.
		return s.classifier.ClassifyBatch(queries)
	}
	out := make([][]Score, len(queries))
	n := len(queries)
	if n == 0 {
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = s.ClassifyKeywords(queries[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// Explanation itemizes a classification per matched vocabulary term.
type Explanation = classify.Explanation

// Explain breaks down why a domain scored the way it did for a query:
// which matched vocabulary terms argued for (or against) it. Compare the
// same term's contribution across domains to see what drove the ranking.
func (s *System) Explain(query string, domain int) (*Explanation, error) {
	return s.classifier.Explain(strings.Fields(query), domain)
}

// MediatedAttributes returns the mediated schema of a domain as attribute
// names — the structured query interface presented to the user.
func (s *System) MediatedAttributes(domain int) ([]string, error) {
	if s.mediated == nil {
		return nil, fmt.Errorf("payg: system built with SkipMediation")
	}
	if domain < 0 || domain >= len(s.mediated) {
		return nil, fmt.Errorf("payg: no domain %d", domain)
	}
	if s.mediated[domain] == nil {
		return nil, fmt.Errorf("payg: domain %d is not local to this shard", domain)
	}
	var out []string
	for _, a := range s.mediated[domain].Attrs {
		out = append(out, a.Name)
	}
	return out, nil
}

// Execute answers a structured query over a domain's mediated schema.
// Sources supplies the data: one Source per input schema, aligned with the
// schema order passed to Build (schemas without data may use an empty
// tuple list). Tuple probabilities combine mapping probability and domain
// membership probability per Section 4.4 of the thesis.
func (s *System) Execute(domain int, q Query, sources []Source) ([]ResultTuple, error) {
	res, err := s.ExecuteContext(context.Background(), domain, q, sources)
	if err != nil {
		return nil, err
	}
	return res.Tuples, nil
}

// ExecuteContext is Execute with cancellation: the query's per-source
// fan-out honors ctx, and the full Result — including the degraded-source
// report — is returned. In-memory sources never fail, so the report is
// empty here; resilient executors over remote sources come from
// NewExecutor.
func (s *System) ExecuteContext(ctx context.Context, domain int, q Query, sources []Source) (*Result, error) {
	ex, err := s.domainExecutor(domain, func(mem int) (engine.TupleSource, error) {
		if len(sources) != len(s.schemas) {
			return nil, fmt.Errorf("payg: %d sources for %d schemas", len(sources), len(s.schemas))
		}
		src := sources[mem]
		if len(src.Schema.Attributes) != len(s.schemas[mem].Attributes) {
			return nil, fmt.Errorf("payg: source %d schema has %d attributes, built schema has %d",
				mem, len(src.Schema.Attributes), len(s.schemas[mem].Attributes))
		}
		if err := src.Validate(); err != nil {
			return nil, fmt.Errorf("payg: %w", err)
		}
		return src, nil
	})
	if err != nil {
		return nil, err
	}
	return ex.ExecuteContext(ctx, q)
}

// domainExecutor builds a per-domain engine executor, resolving each
// member schema index to a TupleSource via pick.
func (s *System) domainExecutor(domain int, pick func(mem int) (engine.TupleSource, error)) (*engine.DomainExecutor, error) {
	if s.mediated == nil {
		return nil, fmt.Errorf("payg: system built with SkipMediation")
	}
	if domain < 0 || domain >= len(s.mediated) {
		return nil, fmt.Errorf("payg: no domain %d", domain)
	}
	if s.mediated[domain] == nil {
		return nil, fmt.Errorf("payg: domain %d is not local to this shard", domain)
	}
	d := &s.model.Domains[domain]
	var srcs []engine.TupleSource
	var probs []float64
	for _, mem := range d.Members {
		src, err := pick(mem.Schema)
		if err != nil {
			return nil, err
		}
		srcs = append(srcs, src)
		probs = append(probs, mem.Prob)
	}
	return engine.NewFetchExecutor(s.mediated[domain], srcs, probs)
}

// Model exposes the underlying probabilistic domain model for advanced use
// (evaluation harnesses, custom classifiers).
func (s *System) Model() *core.Model { return s.model }

// Schemas returns the input schemas in build order.
func (s *System) Schemas() []Schema { return s.schemas }
