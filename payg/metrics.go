package payg

import "schemaflow/internal/obs"

// Serving-stack metrics, registered on the default registry so /metrics
// exposes them. Breaker metrics are labeled by source name (bounded by the
// number of attached sources); rebuild metrics by trigger kind.
var (
	mBreakerTransitions = obs.Default().CounterVec(
		"schemaflow_breaker_transitions_total",
		"Circuit-breaker state transitions per source; `to` is the state entered (closed, open, half-open).",
		"source", "to")
	mBreakerState = obs.Default().GaugeVec(
		"schemaflow_breaker_state",
		"Current circuit-breaker state per source: 0 closed, 1 open, 2 half-open.",
		"source")

	mIngestArrivals = obs.Default().Counter(
		"schemaflow_ingest_arrivals_total",
		"Schemas accepted by Manager.Ingest (POST /schemas).")
	mIngestFresh = obs.Default().Counter(
		"schemaflow_ingest_fresh_arrivals_total",
		"Ingested schemas no existing domain claimed (they seed new domains at the next rebuild).")
	mIngestPending = obs.Default().Gauge(
		"schemaflow_ingest_pending_schemas",
		"Journaled schemas accepted but not yet folded into the serving model.")
	mIngestDrift = obs.Default().Gauge(
		"schemaflow_ingest_drift_ratio",
		"Fraction of recent arrivals that were fresh (the drift-rebuild trigger signal).")

	mRebuildsStarted = obs.Default().CounterVec(
		"schemaflow_rebuilds_started_total",
		"Background recluster+rebuild flights started, by trigger (drift, interval, forced).",
		"trigger")
	mRebuildsPublished = obs.Default().Counter(
		"schemaflow_rebuilds_published_total",
		"Rebuilds that completed and were atomically swapped into serving.")
	mRebuildsFailed = obs.Default().Counter(
		"schemaflow_rebuilds_failed_total",
		"Rebuilds that ended in an error (shutdown cancellations excluded).")
	mRebuildsDiscarded = obs.Default().Counter(
		"schemaflow_rebuilds_discarded_total",
		"Completed rebuilds thrown away because the serving system changed mid-flight.")
	mRebuildDuration = obs.Default().Histogram(
		"schemaflow_rebuild_duration_seconds",
		"Wall-clock duration of background rebuild flights, published or not.",
		obs.DurationBuckets())
	mSwapGeneration = obs.Default().Gauge(
		"schemaflow_swap_generation",
		"Serving-state generation, bumped on every atomic swap (rebuild publication or feedback).")
	mFeedbackApplied = obs.Default().Counter(
		"schemaflow_feedback_applied_total",
		"User feedback batches applied and swapped into serving.")

	mQueryCacheHits = obs.Default().Counter(
		"schemaflow_query_cache_hits_total",
		"Classification requests answered from the generation-keyed query-result cache.")
	mQueryCacheMisses = obs.Default().Counter(
		"schemaflow_query_cache_misses_total",
		"Classification requests that had to run the classifier (absent or stale-generation entries).")
	mQueryCacheEvictions = obs.Default().Counter(
		"schemaflow_query_cache_evictions_total",
		"Query-cache entries dropped, by LRU capacity pressure or because their generation went stale.")
	mQueryCacheSize = obs.Default().Gauge(
		"schemaflow_query_cache_size",
		"Entries currently in the query-result cache.")
	mQueryBatchWidth = obs.Default().Histogram(
		"schemaflow_query_batch_width",
		"Queries per Manager.ClassifyBatch call (POST /classify/batch request width).",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256})

	mCheckpointsWritten = obs.Default().Counter(
		"schemaflow_checkpoints_written_total",
		"Durable checkpoint snapshots written (after recluster swaps and at recovery compaction).")
	mCheckpointErrors = obs.Default().Counter(
		"schemaflow_checkpoint_errors_total",
		"Checkpoint writes or post-checkpoint WAL truncations that failed; the WAL is kept so recovery loses nothing.")
	mCheckpointDuration = obs.Default().Histogram(
		"schemaflow_checkpoint_duration_seconds",
		"Wall-clock duration of one checkpoint write (serialize, fsync, rename, WAL truncate, prune).",
		obs.DurationBuckets())
	mCheckpointGeneration = obs.Default().Gauge(
		"schemaflow_checkpoint_generation",
		"Generation stamped on the newest durable checkpoint. Lag behind schemaflow_swap_generation is the WAL replay a crash would incur.")

	mBuildPhase = obs.Default().HistogramVec(
		"schemaflow_build_phase_duration_seconds",
		"Duration of each Build pipeline phase (features, candidates, pairwise, cluster, domains, classifier, mediation).",
		obs.DurationBuckets(),
		"phase")

	mBuildMode = obs.Default().CounterVec(
		"schemaflow_build_mode_total",
		"Builds by clustering pipeline: exact (dense all-pairs HAC) or blocked (MinHash-LSH candidates + sparse HAC).",
		"mode")
	mBuildCandidatePairs = obs.Default().Gauge(
		"schemaflow_build_candidate_pairs",
		"Candidate pairs the LSH blocking stage emitted in the most recent blocked build.")
	mBuildCandidateFraction = obs.Default().Gauge(
		"schemaflow_build_candidate_fraction",
		"Candidate pairs as a fraction of all n(n-1)/2 pairs in the most recent blocked build — the work the blocking stage saved.")
	mBuildCandidateDuration = obs.Default().Histogram(
		"schemaflow_build_candidate_duration_seconds",
		"Duration of MinHash signature computation plus LSH banding in blocked builds.",
		obs.DurationBuckets())
	mBuildHACWorkers = obs.Default().Gauge(
		"schemaflow_build_hac_workers",
		"Worker goroutines available to the most recent blocked build's pairwise and sparse-HAC stages.")
)
