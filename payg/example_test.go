package payg_test

import (
	"fmt"
	"log"
	"strings"

	"schemaflow/payg"
)

// Example builds a system over three tiny domains and routes a keyword
// query, demonstrating the minimal Build → Classify flow.
func Example() {
	schemas := []payg.Schema{
		{Name: "flights", Attributes: []string{"departure airport", "destination airport", "airline"}},
		{Name: "trips", Attributes: []string{"departure", "destination", "airline", "fare"}},
		{Name: "papers", Attributes: []string{"title", "authors", "publication year"}},
		{Name: "books", Attributes: []string{"title", "author", "publisher"}},
	}
	sys, err := payg.Build(schemas, payg.Options{})
	if err != nil {
		log.Fatal(err)
	}
	best := sys.Classify("departure Toronto destination Cairo")[0]
	fmt.Println("domains:", sys.NumDomains())
	fmt.Println("query routed to the domain containing:", sys.Domains()[best.Domain].Schemas[0].Name)
	// Output:
	// domains: 2
	// query routed to the domain containing: flights
}

// ExampleSystem_Execute shows the full Section 3.3 use case: classify a
// keyword query, then run a structured query over the winning domain's
// mediated schema.
func ExampleSystem_Execute() {
	schemas := []payg.Schema{
		{Name: "air1", Attributes: []string{"departure", "destination", "airline"}},
		{Name: "air2", Attributes: []string{"departure city", "destination city", "carrier"}},
	}
	sys, err := payg.Build(schemas, payg.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sources := []payg.Source{
		{Schema: schemas[0], Tuples: []payg.Tuple{{"YYZ", "CAI", "AirNorth"}}},
		{Schema: schemas[1], Tuples: []payg.Tuple{{"YYZ", "CAI", "BlueJet"}}},
	}
	domain := sys.Classify("departure destination")[0].Domain
	res, err := sys.Execute(domain, payg.Query{
		Select: []string{"departure", "destination"},
	}, sources)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top tuple:", strings.Join(res[0].Values, " → "))
	// Output:
	// top tuple: YYZ → CAI
}

// ExampleSystem_ApplyFeedback demonstrates the pay-as-you-go refinement
// step: a user correction rebuilds the system with the schema pinned.
func ExampleSystem_ApplyFeedback() {
	schemas := []payg.Schema{
		{Name: "cars1", Attributes: []string{"make", "model", "price"}},
		{Name: "cars2", Attributes: []string{"car make", "model", "color"}},
		{Name: "stamps", Attributes: []string{"catalog price", "year", "condition"}},
	}
	sys, err := payg.Build(schemas, payg.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.ApplyFeedback(payg.Feedback{Splits: []int{2}})
	if err != nil {
		log.Fatal(err)
	}
	d := res.NewDomainOf[2]
	fmt.Printf("stamps now alone in its domain: %v\n",
		len(res.System.Domains()[d].Schemas) == 1)
	// Output:
	// stamps now alone in its domain: true
}

// ExampleExtractForms turns a raw deep-web HTML form into a schema ready
// for Build.
func ExampleExtractForms() {
	html := `<form id="search">
	  <label for="d">Departure airport</label><input id="d" name="dep">
	  <label for="a">Destination airport</label><input id="a" name="dst">
	</form>`
	schemas, err := payg.ExtractForms(strings.NewReader(html), "expedia")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(schemas[0].Name, "→", strings.Join(schemas[0].Attributes, ", "))
	// Output:
	// expedia#search → Departure airport, Destination airport
}
