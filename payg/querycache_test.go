package payg

import (
	"context"
	"fmt"
	"testing"
)

func scoresEqual(a, b []Score) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestQueryCacheLRUAndGenerations(t *testing.T) {
	c := newQueryCache(2)
	s1 := []Score{{Domain: 0, LogPosterior: -1, Posterior: 0.9}}
	s2 := []Score{{Domain: 1, LogPosterior: -2, Posterior: 0.1}}

	if _, ok := c.get("a", 0); ok {
		t.Fatal("hit on empty cache")
	}
	c.put("a", 0, s1)
	got, ok := c.get("a", 0)
	if !ok || !scoresEqual(got, s1) {
		t.Fatalf("get after put: %v %v", got, ok)
	}
	// The cache hands out copies: mutating a returned slice must not
	// corrupt the stored ranking.
	got[0].Domain = 99
	if again, _ := c.get("a", 0); again[0].Domain != 0 {
		t.Fatal("cache entry aliased by returned slice")
	}

	// A newer generation makes the entry unservable and drops it.
	if _, ok := c.get("a", 1); ok {
		t.Fatal("stale-generation entry served")
	}
	if _, ok := c.get("a", 0); ok {
		t.Fatal("stale entry not evicted on sight")
	}

	// LRU eviction at capacity 2: touching "b" makes "c" the eviction
	// victim's survivor... fill b, c, touch b, add d -> c evicted.
	c.put("b", 1, s1)
	c.put("c", 1, s2)
	if _, ok := c.get("b", 1); !ok {
		t.Fatal("b missing")
	}
	c.put("d", 1, s1)
	if _, ok := c.get("c", 1); ok {
		t.Fatal("LRU should have evicted c")
	}
	if _, ok := c.get("b", 1); !ok {
		t.Fatal("recently used b evicted")
	}
	if c.len() != 2 {
		t.Fatalf("cache len %d, want 2", c.len())
	}

	if newQueryCache(0) != nil || newQueryCache(-5) != nil {
		t.Fatal("non-positive capacity must disable the cache")
	}
}

func TestManagerClassifyUsesCache(t *testing.T) {
	mgr := newManager(t, nil, ManagerOptions{DriftThreshold: -1})

	first := mgr.Classify("departure destination airline")
	if want := mgr.System().Classify("departure destination airline"); !scoresEqual(first, want) {
		t.Fatalf("cached path diverges from System().Classify:\n%v\n%v", first, want)
	}
	if mgr.queries.len() != 1 {
		t.Fatalf("cache len %d after first query, want 1", mgr.queries.len())
	}
	second := mgr.Classify("departure destination airline")
	if !scoresEqual(first, second) {
		t.Fatal("repeat query returned a different ranking")
	}
	// Keyword order and duplicates canonicalize to the same key (the query
	// vector is a set union), so no extra entry appears.
	reordered := mgr.Classify("airline departure destination departure")
	if !scoresEqual(first, reordered) {
		t.Fatal("reordered query returned a different ranking")
	}
	if mgr.queries.len() != 1 {
		t.Fatalf("cache len %d after reordered repeat, want 1 (key not canonical)", mgr.queries.len())
	}
}

func TestManagerClassifyCacheDisabled(t *testing.T) {
	mgr := newManager(t, nil, ManagerOptions{DriftThreshold: -1, QueryCacheSize: -1})
	if mgr.queries != nil {
		t.Fatal("negative QueryCacheSize must disable the cache")
	}
	got := mgr.Classify("departure destination")
	if want := mgr.System().Classify("departure destination"); !scoresEqual(got, want) {
		t.Fatal("uncached manager classify diverges")
	}
	batch := mgr.ClassifyBatch([]string{"departure", "title authors"})
	if len(batch) != 2 {
		t.Fatalf("batch size %d", len(batch))
	}
	if want := mgr.System().Classify("title authors"); !scoresEqual(batch[1], want) {
		t.Fatal("uncached manager batch diverges")
	}
}

// TestCacheParityAcrossSwaps is the acceptance contract: a stream of
// repeated and novel queries, interleaved with a feedback swap and an
// ingest-triggered recluster, must always answer exactly what an uncached
// Classify against the current generation would — same posteriors, same
// order, same domains — and never serve a ranking across a generation
// swap.
func TestCacheParityAcrossSwaps(t *testing.T) {
	mgr := newManager(t, nil, ManagerOptions{DriftThreshold: -1})

	queries := []string{
		"departure destination airline",
		"title authors venue",
		"make model mileage",
		"departure destination airline", // repeat
		"price",
	}
	checkParity := func(phase string) {
		t.Helper()
		for _, q := range queries {
			cached := mgr.Classify(q)
			uncached := mgr.System().Classify(q)
			if !scoresEqual(cached, uncached) {
				t.Fatalf("%s: query %q: cached %v, uncached %v", phase, q, cached, uncached)
			}
			// Second hit must come from the cache and stay identical.
			if again := mgr.Classify(q); !scoresEqual(again, uncached) {
				t.Fatalf("%s: query %q: second (cached) answer diverged", phase, q)
			}
		}
	}

	checkParity("initial")
	genBefore := mgr.cur.Load().gen

	// Feedback swap: bumps the generation; every cached entry is stale.
	travel := mgr.System().Model().Clustering.Assign[0]
	if _, err := mgr.ApplyFeedback(Feedback{Moves: []Move{{Schema: 5, Domain: travel}}}); err != nil {
		t.Fatal(err)
	}
	if g := mgr.cur.Load().gen; g != genBefore+1 {
		t.Fatalf("feedback did not bump state generation: %d -> %d", genBefore, g)
	}
	checkParity("after feedback")

	// Ingest-triggered recluster: the published rebuild swaps a new system
	// (and generation) in.
	for _, sch := range newcomerSchemas() {
		if _, err := mgr.Ingest(sch); err != nil {
			t.Fatal(err)
		}
	}
	if err := mgr.Recluster(context.Background()); err != nil {
		t.Fatal(err)
	}
	if g := mgr.cur.Load().gen; g != genBefore+2 {
		t.Fatalf("recluster did not bump state generation: got %d", g)
	}
	checkParity("after recluster")

	// Novel queries after the swaps keep populating the fresh generation.
	for i := 0; i < 5; i++ {
		q := fmt.Sprintf("novel query %d", i)
		if !scoresEqual(mgr.Classify(q), mgr.System().Classify(q)) {
			t.Fatalf("novel query %q diverged", q)
		}
	}
}

// TestManagerClassifyBatchParity mixes cached and novel queries in one
// batch and checks input-order parity with the sequential uncached path.
func TestManagerClassifyBatchParity(t *testing.T) {
	mgr := newManager(t, nil, ManagerOptions{DriftThreshold: -1})

	// Warm two of the five.
	mgr.Classify("departure destination airline")
	mgr.Classify("title authors")

	batch := []string{
		"departure destination airline", // hit
		"make model",                    // miss
		"title authors",                 // hit
		"fuel type transmission",        // miss
		"departure destination airline", // duplicate of a hit
	}
	got := mgr.ClassifyBatch(batch)
	if len(got) != len(batch) {
		t.Fatalf("batch returned %d results for %d queries", len(got), len(batch))
	}
	for i, q := range batch {
		if want := mgr.System().Classify(q); !scoresEqual(got[i], want) {
			t.Fatalf("batch[%d] (%q) diverged from uncached classify", i, q)
		}
	}
	// Everything in the batch is now cached; a repeat batch must be all
	// hits and identical.
	again := mgr.ClassifyBatch(batch)
	for i := range batch {
		if !scoresEqual(again[i], got[i]) {
			t.Fatalf("repeat batch[%d] diverged", i)
		}
	}
}
