package payg

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"schemaflow/internal/dataset"
)

// TestTermBackendDefaultEquivalence guards the refactor's central promise:
// moving MinHash-LSH candidate generation behind the Vectorizer interface
// changed nothing about the default backend — a blocked build with an
// explicit "term" backend is bit-identical to one with the backend left
// unset.
func TestTermBackendDefaultEquivalence(t *testing.T) {
	set := dataset.Large(dataset.LargeConfig{N: 400, Domains: 8, Seed: 21})
	base, err := Build(set, Options{CandidateGen: "lsh", SkipMediation: true})
	if err != nil {
		t.Fatal(err)
	}
	term, err := Build(set, Options{CandidateGen: "lsh", SkipMediation: true, Vectorizer: "term"})
	if err != nil {
		t.Fatal(err)
	}
	a, b := base.Model().Clustering.Assign, term.Model().Clustering.Assign
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cluster assignment diverges at schema %d: %d vs %d", i, a[i], b[i])
		}
	}
	for qi := 0; qi < 50; qi++ {
		kw := set[qi*7%len(set)].Attributes
		sa, sb := base.ClassifyKeywords(kw), term.ClassifyKeywords(kw)
		if len(sa) != len(sb) {
			t.Fatalf("query %d: score counts %d vs %d", qi, len(sa), len(sb))
		}
		for j := range sa {
			if sa[j] != sb[j] {
				t.Fatalf("query %d rank %d: %+v vs %+v", qi, j, sa[j], sb[j])
			}
		}
	}
}

func TestUnknownVectorizerRejected(t *testing.T) {
	if _, err := Build(demoSchemas(), Options{Vectorizer: "word2vec"}); err == nil {
		t.Fatal("unknown vectorizer accepted")
	}
}

// TestNGramBlockedBuildClusters exercises the dense backend end to end on
// the blocked path: ANN candidate pairs must recover essentially the same
// domain structure as the MinHash path (exact term-space similarity still
// decides every merge; the backends differ only in which pairs they
// propose, so domain counts may drift slightly).
func TestNGramBlockedBuildClusters(t *testing.T) {
	set := dataset.Large(dataset.LargeConfig{N: 400, Domains: 8, Seed: 21})
	term, err := Build(set, Options{CandidateGen: "lsh", SkipMediation: true})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Build(set, Options{CandidateGen: "lsh", SkipMediation: true, Vectorizer: "ngram"})
	if err != nil {
		t.Fatal(err)
	}
	nTerm, nGram := term.NumDomains(), sys.NumDomains()
	t.Logf("blocked domains: term=%d ngram=%d", nTerm, nGram)
	if lo, hi := nTerm*8/10, nTerm*12/10+2; nGram < lo || nGram > hi {
		t.Fatalf("ngram blocked build found %d domains, term backend found %d (want within [%d,%d])", nGram, nTerm, lo, hi)
	}
	if got := sys.Classify("anything at all"); len(got) == 0 {
		t.Fatal("classification returned no scores")
	}
}

// TestNGramPrunedTop1Agreement is the ISSUE's acceptance bar: on the same
// model, ANN-pruned classification must reproduce the exact classifier's
// top-1 domain on at least 99% of queries.
func TestNGramPrunedTop1Agreement(t *testing.T) {
	set := dataset.Large(dataset.LargeConfig{N: 800, Domains: 16, Seed: 9})
	exact, err := Build(set, Options{SkipMediation: true})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Build(set, Options{SkipMediation: true, Vectorizer: "ngram"})
	if err != nil {
		t.Fatal(err)
	}
	// Both take the exact (dense) build path below CandidateAutoMin, so the
	// models are identical and the only difference is classification
	// pruning. Verify the premise before measuring agreement.
	a, b := exact.Model().Clustering.Assign, pruned.Model().Clustering.Assign
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("models diverge at schema %d — exact-path builds should be backend-independent", i)
		}
	}

	queries := 0
	agree := 0
	for qi := 0; qi < 400; qi++ {
		kw := set[(qi*13)%len(set)].Attributes
		se := exact.ClassifyKeywords(kw)
		sp := pruned.ClassifyKeywords(kw)
		if len(se) == 0 || len(sp) == 0 {
			t.Fatalf("query %d: empty ranking (exact %d, pruned %d)", qi, len(se), len(sp))
		}
		queries++
		if se[0].Domain == sp[0].Domain {
			agree++
		}
	}
	frac := float64(agree) / float64(queries)
	t.Logf("pruned top-1 agreement: %d/%d = %.4f", agree, queries, frac)
	if frac < 0.99 {
		t.Fatalf("top-1 agreement %.4f < 0.99", frac)
	}
}

// TestNGramPrunedIngestAgreement checks the assignment half of
// shortlist-then-verify: restricted Algorithm 3 must find the same best
// domain as the unrestricted comparison for nearly all arrivals.
func TestNGramPrunedIngestAgreement(t *testing.T) {
	set := dataset.Large(dataset.LargeConfig{N: 800, Domains: 16, Seed: 9})
	exact, err := Build(set, Options{SkipMediation: true})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Build(set, Options{SkipMediation: true, Vectorizer: "ngram"})
	if err != nil {
		t.Fatal(err)
	}
	arrivals := dataset.Large(dataset.LargeConfig{N: 200, Domains: 16, Seed: 10})
	agree, total := 0, 0
	for i, sch := range arrivals {
		sch.Name = fmt.Sprintf("arrival-%d", i)
		ae, err := exact.Ingest(sch)
		if err != nil {
			t.Fatal(err)
		}
		ap, err := pruned.Ingest(sch)
		if err != nil {
			t.Fatal(err)
		}
		total++
		if ae.BestDomain == ap.BestDomain {
			agree++
		}
	}
	frac := float64(agree) / float64(total)
	t.Logf("pruned ingest best-domain agreement: %d/%d = %.4f", agree, total, frac)
	if frac < 0.95 {
		t.Fatalf("ingest agreement %.4f < 0.95", frac)
	}
}

// TestNGramPersistRoundTrip: fitted backend state is derived, so a saved
// ngram system must come back with pruning active and identical rankings.
func TestNGramPersistRoundTrip(t *testing.T) {
	set := dataset.Large(dataset.LargeConfig{N: 300, Domains: 6, Seed: 4})
	sys, err := Build(set, Options{SkipMediation: true, Vectorizer: "ngram"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.vectorizer == nil || got.vectorizer.Name() != "ngram" {
		t.Fatal("loaded system lost its ngram backend")
	}
	for qi := 0; qi < 40; qi++ {
		kw := set[qi*7%len(set)].Attributes
		sa, sb := sys.ClassifyKeywords(kw), got.ClassifyKeywords(kw)
		if len(sa) != len(sb) {
			t.Fatalf("query %d: score counts %d vs %d after reload", qi, len(sa), len(sb))
		}
		for j := range sa {
			if sa[j].Domain != sb[j].Domain {
				t.Fatalf("query %d rank %d: domain %d vs %d after reload", qi, j, sa[j].Domain, sb[j].Domain)
			}
		}
	}
}

// TestNGramConcurrentClassifyDuringReclusterSwap hammers classification and
// ingestion on an ngram-backed manager while a recluster publishes a new
// generation — the backend swap must be as atomic as the system swap
// (run with -race to check the fitted state is never shared mutably).
func TestNGramConcurrentClassifyDuringReclusterSwap(t *testing.T) {
	base := demoSchemas()
	sys, err := Build(base, Options{SkipMediation: true, Vectorizer: "ngram"})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(sys, nil, ManagerOptions{DriftThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	stop := make(chan struct{})
	errc := make(chan error, 8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if got := mgr.System().Classify("departure airline price"); len(got) == 0 {
					errc <- fmt.Errorf("classify returned no scores")
					return
				}
				sch := Schema{
					Name:       fmt.Sprintf("hammer-%d-%d", w, i),
					Attributes: []string{"departure airport", "airline", "price"},
				}
				if _, err := mgr.System().Ingest(sch); err != nil {
					errc <- fmt.Errorf("ingest: %v", err)
					return
				}
			}
		}(w)
	}

	for _, sch := range newcomerSchemas() {
		if _, err := mgr.Ingest(sch); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < 3; r++ {
		if err := mgr.Recluster(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if mgr.System().vectorizer == nil || mgr.System().vectorizer.Name() != "ngram" {
		t.Fatal("rebuilt generation lost the ngram backend")
	}
}
