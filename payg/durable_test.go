package payg

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// durableQueries are the probes used to compare a recovered manager's
// classifications against a never-crashed one.
var durableQueries = []string{
	"departure airline price",
	"title author year",
	"telescope seismograph",
	"publication conference",
}

// assertSameClassifications fails unless both managers rank every probe
// query bit-identically.
func assertSameClassifications(t *testing.T, want, got *Manager) {
	t.Helper()
	for _, q := range durableQueries {
		w, g := want.Classify(q), got.Classify(q)
		if !reflect.DeepEqual(w, g) {
			t.Fatalf("classification of %q diverged after recovery:\nwant %+v\ngot  %+v", q, w, g)
		}
	}
}

func newDurableManager(t *testing.T, dir string, opts ManagerOptions) *Manager {
	t.Helper()
	opts.DataDir = dir
	sys := build(t, Options{})
	mgr, err := NewManager(sys, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	return mgr
}

func TestSaveFileWritesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.snap")
	if err := SaveFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("payload"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "payload" {
		t.Fatalf("read back %q, %v", got, err)
	}

	// A failing writer must leave neither the target nor temp litter.
	bad := filepath.Join(dir, "bad.snap")
	wantErr := errors.New("boom")
	if err := SaveFile(bad, func(w io.Writer) error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("SaveFile error = %v, want %v", err, wantErr)
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatalf("failed SaveFile left target file (stat err %v)", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

func TestSystemSaveFileRoundTrip(t *testing.T) {
	sys := build(t, Options{})
	path := filepath.Join(t.TempDir(), "sys.snap")
	if err := sys.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	loaded, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumSchemas() != sys.NumSchemas() || loaded.NumDomains() != sys.NumDomains() {
		t.Fatalf("loaded %d schemas / %d domains, want %d / %d",
			loaded.NumSchemas(), loaded.NumDomains(), sys.NumSchemas(), sys.NumDomains())
	}
}

// TestDurableCrashRecovery is the crash-sim guarantee: arrivals and
// feedback acked after the last checkpoint survive a crash (the manager
// is abandoned without Close, so nothing is flushed beyond what the ack
// path promised) and the recovered manager classifies bit-identically to
// one that never crashed.
func TestDurableCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	crashed := newDurableManager(t, dir, ManagerOptions{DriftThreshold: -1})
	control := newManager(t, nil, ManagerOptions{DriftThreshold: -1})

	fb := Feedback{Moves: []Move{{Schema: 5, Domain: 0}}}
	for _, m := range []*Manager{crashed, control} {
		for _, sch := range newcomerSchemas() {
			if _, err := m.Ingest(sch); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := m.ApplyFeedback(fb); err != nil {
			t.Fatal(err)
		}
	}
	wantStatus := crashed.Status()
	// Crash: no Close, no checkpoint since bootstrap — the WAL is the
	// only thing carrying the three arrivals and the feedback batch.

	recovered, err := LoadManagerDir(dir, ManagerOptions{DriftThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()

	got := recovered.Status()
	if got.Schemas != wantStatus.Schemas || got.Pending != wantStatus.Pending || got.Domains != wantStatus.Domains {
		t.Fatalf("recovered status %+v, want schemas/domains/pending of %+v", got, wantStatus)
	}
	if got.Generation != wantStatus.Generation {
		t.Fatalf("recovered generation %d, want %d", got.Generation, wantStatus.Generation)
	}
	assertSameClassifications(t, control, recovered)

	// The recovered manager keeps accruing: a rebuild folds the replayed
	// journal into the model exactly as it would have pre-crash.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := recovered.Recluster(ctx); err != nil {
		t.Fatal(err)
	}
	if err := control.Recluster(ctx); err != nil {
		t.Fatal(err)
	}
	if recovered.Status().Pending != 0 {
		t.Fatalf("pending %d after recovered rebuild", recovered.Status().Pending)
	}
	if rs, cs := recovered.System().NumSchemas(), control.System().NumSchemas(); rs != cs {
		t.Fatalf("recovered rebuild has %d schemas, control %d", rs, cs)
	}
	assertSameClassifications(t, control, recovered)
}

// TestDurableTornWALRecovery crashes mid-append: garbage (a torn record)
// is stapled to the WAL tail, and recovery must keep every acked arrival
// while dropping only the torn tail.
func TestDurableTornWALRecovery(t *testing.T) {
	dir := t.TempDir()
	mgr := newDurableManager(t, dir, ManagerOptions{DriftThreshold: -1})
	for _, sch := range newcomerSchemas() {
		if _, err := mgr.Ingest(sch); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate the partially flushed append a SIGKILL leaves behind.
	f, err := os.OpenFile(filepath.Join(dir, walFileName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xDE, 0xAD}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recovered, err := LoadManagerDir(dir, ManagerOptions{DriftThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if got := recovered.Status().Pending; got != len(newcomerSchemas()) {
		t.Fatalf("recovered %d pending arrivals, want %d", got, len(newcomerSchemas()))
	}
}

func TestDurableCheckpointOnRecluster(t *testing.T) {
	dir := t.TempDir()
	mgr := newDurableManager(t, dir, ManagerOptions{DriftThreshold: -1})
	defer mgr.Close()
	for _, sch := range newcomerSchemas()[:2] {
		if _, err := mgr.Ingest(sch); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := mgr.Recluster(ctx); err != nil {
		t.Fatal(err)
	}

	// The swap checkpointed at the new generation and truncated the WAL.
	if _, err := os.Stat(filepath.Join(dir, checkpointName(mgr.Generation()))); err != nil {
		t.Fatalf("no checkpoint at generation %d: %v", mgr.Generation(), err)
	}
	if info, err := os.Stat(filepath.Join(dir, walFileName)); err != nil || info.Size() != 0 {
		t.Fatalf("WAL not truncated after checkpoint: size %d, err %v", info.Size(), err)
	}

	recovered, err := LoadManagerDir(dir, ManagerOptions{DriftThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if got, want := recovered.System().NumSchemas(), mgr.System().NumSchemas(); got != want {
		t.Fatalf("recovered %d schemas, want %d", got, want)
	}
	if recovered.Status().Pending != 0 {
		t.Fatalf("recovered %d pending, want 0", recovered.Status().Pending)
	}
	if recovered.Generation() != mgr.Generation() {
		t.Fatalf("recovered generation %d, want %d", recovered.Generation(), mgr.Generation())
	}
}

func TestCheckpointRotationKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	mgr := newDurableManager(t, dir, ManagerOptions{DriftThreshold: -1, CheckpointRetain: 2})
	defer mgr.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	schs := newcomerSchemas()
	for i := 0; i < 3; i++ {
		if _, err := mgr.Ingest(schs[i]); err != nil {
			t.Fatal(err)
		}
		if err := mgr.Recluster(ctx); err != nil {
			t.Fatal(err)
		}
	}
	gens, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 {
		t.Fatalf("rotation kept %d checkpoints (%v), want 2", len(gens), gens)
	}
	if gens[len(gens)-1] != mgr.Generation() {
		t.Fatalf("newest checkpoint generation %d, serving generation %d", gens[len(gens)-1], mgr.Generation())
	}
}

func TestNewManagerRefusesInitializedDataDir(t *testing.T) {
	dir := t.TempDir()
	mgr := newDurableManager(t, dir, ManagerOptions{DriftThreshold: -1})
	mgr.Close()
	sys := build(t, Options{})
	if _, err := NewManager(sys, nil, ManagerOptions{DataDir: dir}); err == nil {
		t.Fatal("NewManager accepted a data dir that already holds a checkpoint")
	} else if !strings.Contains(err.Error(), "LoadManagerDir") {
		t.Fatalf("error %q does not point at LoadManagerDir", err)
	}
}

func TestLoadManagerDirServeData(t *testing.T) {
	dir := t.TempDir()
	mgr := newDurableManager(t, dir, ManagerOptions{DriftThreshold: -1})
	mgr.Close()
	recovered, err := LoadManagerDir(dir, ManagerOptions{
		DriftThreshold: -1,
		ServeData:      true,
		MakeSource: func(sch Schema) TupleSource {
			row := make(Tuple, len(sch.Attributes))
			for i := range row {
				row[i] = fmt.Sprintf("%s-%d", sch.Name, i)
			}
			return Source{Schema: sch, Tuples: []Tuple{row}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if recovered.Executor() == nil {
		t.Fatal("ServeData recovery left the manager without an executor")
	}
	res, err := recovered.Executor().Execute(context.Background(), 0, Query{Select: recovered.System().Domains()[0].MediatedAttributes[:1]})
	if err != nil {
		t.Fatalf("query after ServeData recovery: %v", err)
	}
	if len(res.Tuples) == 0 {
		t.Fatal("query after ServeData recovery returned no tuples")
	}
}

func TestSnapshotBytesRestoreRoundTrip(t *testing.T) {
	leader := newManager(t, nil, ManagerOptions{DriftThreshold: -1})
	for _, sch := range newcomerSchemas()[:2] {
		if _, err := leader.Ingest(sch); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := leader.Recluster(ctx); err != nil {
		t.Fatal(err)
	}

	// Follower bootstrap: load the leader snapshot pinned at its
	// generation.
	snap, gen, err := leader.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	if gen != leader.Generation() {
		t.Fatalf("SnapshotBytes generation %d, serving %d", gen, leader.Generation())
	}
	follower, err := LoadManagerAt(bytes.NewReader(snap), gen, nil, ManagerOptions{DriftThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	if follower.Generation() != gen {
		t.Fatalf("follower generation %d, want %d", follower.Generation(), gen)
	}
	assertSameClassifications(t, leader, follower)

	// Leader state advances (feedback swap); the follower adopts the new
	// snapshot and converges.
	if _, err := leader.ApplyFeedback(Feedback{Moves: []Move{{Schema: 5, Domain: 0}}}); err != nil {
		t.Fatal(err)
	}
	snap2, gen2, err := leader.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	if gen2 <= gen {
		t.Fatalf("generation did not advance: %d -> %d", gen, gen2)
	}
	if err := follower.Restore(bytes.NewReader(snap2), gen2); err != nil {
		t.Fatal(err)
	}
	if follower.Generation() != gen2 {
		t.Fatalf("follower generation %d after restore, want %d", follower.Generation(), gen2)
	}
	assertSameClassifications(t, leader, follower)
}

func TestRestoreRejectsManagerWithSources(t *testing.T) {
	set := demoSchemas()
	mgr := newManager(t, demoSources(set), ManagerOptions{DriftThreshold: -1})
	snap, gen, err := mgr.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Restore(bytes.NewReader(snap), gen+1); err == nil {
		t.Fatal("Restore into a data-serving manager succeeded")
	}
}
