package payg

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"schemaflow/internal/core"
	"schemaflow/internal/ingest"
	"schemaflow/internal/wal"
)

// ManagerOptions tunes the online ingestion pipeline. The zero value of
// every field selects a sensible default.
type ManagerOptions struct {
	// DriftThreshold is the fraction of recent arrivals that must be
	// "fresh" (claimed by no existing domain) to trigger a background
	// recluster. Default 0.5; negative disables drift-triggered rebuilds
	// (forced and interval rebuilds still work).
	DriftThreshold float64
	// DriftWindow is the sliding-window size over which drift is measured
	// (default 16 arrivals).
	DriftWindow int
	// DriftMinSamples is the minimum number of windowed arrivals before
	// drift can trigger at all (default 4), so one unlucky first arrival
	// does not recluster the world.
	DriftMinSamples int
	// RebuildInterval, when positive, rebuilds periodically whenever
	// schemas are pending — a backstop for workloads whose arrivals are
	// in-domain (never fresh, so drift stays low) but should still join
	// the serving model eventually.
	RebuildInterval time.Duration
	// Policy is the per-source resilience policy for the query executor.
	// The zero value selects DefaultPolicy.
	Policy Policy
	// MakeSource supplies the TupleSource for an ingested schema when the
	// manager serves data. Nil means an empty in-memory source (the
	// schema is classifiable and mediated, but contributes no tuples
	// until real data is attached).
	MakeSource func(Schema) TupleSource
	// Logf receives lifecycle messages (rebuild started/finished/
	// discarded). Nil discards them.
	Logf func(format string, args ...any)
	// QueryCacheSize bounds the generation-keyed LRU cache of classification
	// results served by Manager.Classify and friends. Zero means 1024;
	// negative disables caching entirely (every request runs the
	// classifier).
	QueryCacheSize int
	// DataDir, when set, makes the manager durable: accepted arrivals are
	// written to a write-ahead log before they are acked, every recluster
	// swap writes a generation-stamped checkpoint snapshot (atomic
	// temp-file+rename), and LoadManagerDir recovers the full state after
	// a crash. Empty disables persistence. A fresh manager refuses a
	// DataDir that already holds a checkpoint — recover it with
	// LoadManagerDir instead of silently clobbering it.
	DataDir string
	// FsyncMode selects the WAL fsync policy: "always" (default — an
	// acked arrival survives an immediate power cut), "interval"
	// (background fsync every FsyncInterval), or "none" (the OS decides).
	FsyncMode string
	// FsyncInterval is the background fsync period under
	// FsyncMode "interval" (default 100ms).
	FsyncInterval time.Duration
	// CheckpointRetain is how many checkpoint snapshots rotation keeps in
	// DataDir (default 3, minimum 1). Recovery always uses the newest;
	// older ones are manual-disaster spares.
	CheckpointRetain int
	// ServeData makes LoadManagerDir attach one MakeSource-built
	// TupleSource per recovered schema, so the query path survives
	// recovery (a static source list cannot — the recovered schema set no
	// longer aligns with it). False leaves the recovered manager without
	// data: classification and ingestion work, /query does not.
	ServeData bool
	// Transform, when non-nil, post-processes every newly built serving
	// system before it is published — after a rebuild and after a feedback
	// apply (including WAL replay on recovery). It must be deterministic:
	// replicas replaying the same inputs through the same Transform must
	// converge on the same state. Shard replicas use it to re-prune a
	// rebuilt full system down to their local domains.
	Transform func(*System) (*System, error)
}

func (o ManagerOptions) withDefaults() ManagerOptions {
	if o.DriftThreshold == 0 {
		o.DriftThreshold = 0.5
	}
	if o.DriftWindow == 0 {
		o.DriftWindow = 16
	}
	if o.DriftMinSamples == 0 {
		o.DriftMinSamples = 4
	}
	if o.Policy == (Policy{}) {
		o.Policy = DefaultPolicy()
	}
	if o.MakeSource == nil {
		o.MakeSource = func(sch Schema) TupleSource { return Source{Schema: sch} }
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.QueryCacheSize == 0 {
		o.QueryCacheSize = 1024
	}
	if o.CheckpointRetain == 0 {
		o.CheckpointRetain = 3
	}
	if o.CheckpointRetain < 1 {
		o.CheckpointRetain = 1
	}
	return o
}

// managedState is one immutable serving generation: a built system, its
// query executor, and the sources the executor is bound to. Readers load
// it atomically and never see a half-built model. gen is the generation
// counter value at which this state was published; carrying it here lets
// the query cache read a consistent (system, generation) pair from a
// single atomic load.
type managedState struct {
	sys     *System
	exec    *Executor     // nil when serving without data
	sources []TupleSource // aligned with sys.Schemas(); nil when no data
	gen     int
}

// flight is one in-progress background rebuild (single-flight: at most one
// exists at a time). err is written before done is closed and must only be
// read after <-done.
type flight struct {
	done chan struct{}
	err  error
}

// Manager owns a serving System and grows it online — the pay-as-you-go
// loop as a subsystem. Arriving schemas are assigned to current domains
// immediately (Ingest, read-only against the serving model), journaled,
// and folded into a full recluster+rebuild that runs in a background
// goroutine when assignment quality drifts, when a rebuild interval
// elapses, or on demand (Recluster). The rebuilt system is published by a
// copy-on-write atomic swap: Classify/Execute traffic keeps hitting the
// old generation, un-blocked, until the new one is complete, and
// per-source circuit-breaker state carries across the swap via a shared
// BreakerPool. All methods are safe for concurrent use. See the package
// documentation ("Serving online: the Manager lifecycle") for the full
// state machine, including when a completed rebuild is discarded.
type Manager struct {
	opts ManagerOptions
	cur  atomic.Pointer[managedState]
	pool *BreakerPool // nil when serving without data

	mu        sync.Mutex
	journal   ingest.Journal
	drift     *ingest.Window
	gen       int     // bumped on every swap; a rebuild whose base generation is stale is discarded
	inflight  *flight // non-nil while a background rebuild runs
	cancel    context.CancelFunc
	rebuilds  int // completed, swapped-in rebuilds
	discarded int // rebuilds discarded because the base changed mid-flight
	closed    bool

	// queries caches ranked classification results keyed by canonical term
	// set and serving generation; nil when QueryCacheSize < 0.
	queries *queryCache

	// Durability (nil/zero when ManagerOptions.DataDir is empty). wal is
	// appended under mu before an arrival is acked; checkpointLocked
	// truncates it after a snapshot lands.
	wal     *wal.Log
	dataDir string
	retain  int

	stopInterval context.CancelFunc
	wg           sync.WaitGroup
}

// NewManager wraps a built system for online ingestion. sources, when
// non-nil, must supply one TupleSource per schema in build order (as for
// NewExecutor) and enables the query path; ingested schemas get sources
// from opts.MakeSource at rebuild time. Call Close to stop background
// work.
func NewManager(sys *System, sources []TupleSource, opts ManagerOptions) (*Manager, error) {
	opts = opts.withDefaults()
	m := &Manager{
		opts:    opts,
		drift:   ingest.NewWindow(opts.DriftWindow),
		queries: newQueryCache(opts.QueryCacheSize),
	}
	st := &managedState{sys: sys}
	if sources != nil {
		m.pool = NewBreakerPool(opts.Policy)
		exec, err := sys.NewExecutorShared(sources, opts.Policy, m.pool)
		if err != nil {
			return nil, err
		}
		st.exec = exec
		st.sources = sources
	}
	m.cur.Store(st)
	if opts.DataDir != "" {
		// Bootstrap durability for a freshly built system. A data dir
		// that already holds a checkpoint belongs to a previous
		// incarnation — refuse to clobber it.
		if ok, err := HasCheckpoint(opts.DataDir); err != nil {
			return nil, fmt.Errorf("payg: scanning data dir %s: %w", opts.DataDir, err)
		} else if ok {
			return nil, fmt.Errorf("payg: data dir %s already holds a checkpoint; recover it with LoadManagerDir", opts.DataDir)
		}
		if err := m.initDurable(opts); err != nil {
			return nil, err
		}
	}
	if opts.RebuildInterval > 0 {
		ctx, cancel := context.WithCancel(context.Background())
		m.stopInterval = cancel
		m.wg.Add(1)
		go m.intervalLoop(ctx, opts.RebuildInterval)
	}
	return m, nil
}

// LoadManager reconstructs a manager from a snapshot written by
// Manager.Save: the system is rebuilt as by Load, and every journaled
// pending schema is re-assigned against it and restored to the journal —
// a restart loses nothing. sources and opts are as for NewManager.
func LoadManager(r io.Reader, sources []TupleSource, opts ManagerOptions) (*Manager, error) {
	sys, pending, err := LoadWithPending(r)
	if err != nil {
		return nil, err
	}
	m, err := NewManager(sys, sources, opts)
	if err != nil {
		return nil, err
	}
	for _, sch := range pending {
		a, err := sys.Ingest(sch)
		if err != nil {
			return nil, fmt.Errorf("payg: re-assigning journaled schema %q: %w", sch.Name, err)
		}
		m.journal.Append(journalEntry(sch, a))
	}
	return m, nil
}

// journalEntry converts a public Assignment back to the journal's form.
func journalEntry(sch Schema, a *Assignment) ingest.Entry {
	e := ingest.Entry{Schema: sch, Assignment: ingest.Assignment{
		Best:    a.BestDomain,
		BestSim: a.BestSim,
		Fresh:   a.Fresh,
	}}
	for _, d := range a.Domains {
		e.Assignment.Domains = append(e.Assignment.Domains, core.Membership{Schema: d.Domain, Prob: d.Prob})
	}
	return e
}

// System returns the current serving system (lock-free).
func (m *Manager) System() *System { return m.cur.Load().sys }

// Executor returns the current query executor, or nil when the manager
// serves without data (lock-free).
func (m *Manager) Executor() *Executor { return m.cur.Load().exec }

// Classify ranks all domains for a free-text keyword query, answering from
// the generation-keyed result cache when the same canonical term set was
// classified against the current serving generation before. Results are
// always identical to System().Classify: a swap (rebuild publication or
// feedback apply) bumps the generation, which invalidates every older
// entry for free — stale rankings are structurally unservable.
func (m *Manager) Classify(query string) []Score {
	return m.ClassifyKeywords(strings.Fields(query))
}

// ClassifyKeywords is Classify for an already-tokenized query.
func (m *Manager) ClassifyKeywords(keywords []string) []Score {
	st := m.cur.Load()
	if m.queries == nil {
		return st.sys.ClassifyKeywords(keywords)
	}
	key := cacheKey(st.sys.space.QueryTerms(keywords))
	if scores, ok := m.queries.get(key, st.gen); ok {
		return scores
	}
	scores := st.sys.ClassifyKeywords(keywords)
	// The entry is tagged with the generation the ranking was computed
	// against; if a swap raced this call, the tag no longer matches the
	// serving generation and the entry is simply never served.
	m.queries.put(key, st.gen, scores)
	return scores
}

// ClassifyBatch ranks domains for many free-text queries in one call,
// in input order. Cached queries are answered immediately; the misses run
// through the classifier's CPU-parallel batch path against a single
// consistent serving generation and populate the cache for next time.
func (m *Manager) ClassifyBatch(queries []string) [][]Score {
	mQueryBatchWidth.Observe(float64(len(queries)))
	st := m.cur.Load()
	out := make([][]Score, len(queries))
	if m.queries == nil {
		kws := make([][]string, len(queries))
		for i, q := range queries {
			kws[i] = strings.Fields(q)
		}
		return st.sys.ClassifyBatch(kws)
	}
	keys := make([]string, len(queries))
	var missIdx []int
	var missKws [][]string
	for i, q := range queries {
		kw := strings.Fields(q)
		keys[i] = cacheKey(st.sys.space.QueryTerms(kw))
		if scores, ok := m.queries.get(keys[i], st.gen); ok {
			out[i] = scores
			continue
		}
		missIdx = append(missIdx, i)
		missKws = append(missKws, kw)
	}
	if len(missIdx) > 0 {
		res := st.sys.ClassifyBatch(missKws)
		for k, i := range missIdx {
			out[i] = res[k]
			m.queries.put(keys[i], st.gen, res[k])
		}
	}
	return out
}

// IngestResult reports what happened to one arrival.
type IngestResult struct {
	// Assignment is the immediate routing decision against the serving
	// model.
	Assignment *Assignment
	// Pending is the journal length after this arrival — schemas accepted
	// but not yet part of the serving model.
	Pending int
	// DriftRatio is the current fraction of fresh arrivals in the window.
	DriftRatio float64
	// RebuildTriggered is true when this arrival pushed drift over the
	// threshold and started a background rebuild.
	RebuildTriggered bool
	// Rebuilding is true while a background rebuild is in flight.
	Rebuilding bool
}

// Ingest accepts one new schema: it is assigned to current domains
// immediately (without touching the serving model), journaled for the next
// rebuild, and counted toward drift. If the drift ratio crosses the
// threshold a background recluster starts (single-flight). Ingest never
// blocks on a rebuild.
//
// On a durable manager (ManagerOptions.DataDir) the arrival is appended
// to the write-ahead log — fsynced under the default policy — before
// Ingest returns, so an acked arrival survives a crash at any later
// point. A WAL append failure rejects the arrival instead of acking
// something the disk never saw.
func (m *Manager) Ingest(sch Schema) (*IngestResult, error) {
	st := m.cur.Load()
	a, err := st.sys.Ingest(sch)
	if err != nil {
		return nil, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("payg: manager closed")
	}
	if err := m.appendWALLocked(walRecord{Kind: walKindIngest, Schema: &sch}); err != nil {
		return nil, err
	}
	m.journal.Append(journalEntry(sch, a))
	m.drift.Record(a.Fresh)
	mIngestArrivals.Inc()
	if a.Fresh {
		mIngestFresh.Inc()
	}
	mIngestPending.Set(float64(m.journal.Len()))
	mIngestDrift.Set(m.drift.Ratio())
	res := &IngestResult{
		Assignment: a,
		Pending:    m.journal.Len(),
		DriftRatio: m.drift.Ratio(),
	}
	if m.inflight == nil &&
		m.opts.DriftThreshold >= 0 &&
		m.drift.Samples() >= m.opts.DriftMinSamples &&
		m.drift.Ratio() >= m.opts.DriftThreshold {
		m.startRebuildLocked("drift")
		res.RebuildTriggered = true
	}
	res.Rebuilding = m.inflight != nil
	return res, nil
}

// Recluster forces a full recluster+rebuild over the serving schemas plus
// everything pending, and waits for it to be published (or for ctx). If a
// background rebuild is already in flight it joins that one instead of
// starting another.
func (m *Manager) Recluster(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return fmt.Errorf("payg: manager closed")
	}
	f := m.inflight
	if f == nil {
		f = m.startRebuildLocked("forced")
	}
	m.mu.Unlock()

	select {
	case <-f.done:
		return f.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// startRebuildLocked launches the single background rebuild flight.
// Callers must hold m.mu and have checked that no flight is running.
func (m *Manager) startRebuildLocked(reason string) *flight {
	st := m.cur.Load()
	entries := m.journal.Snapshot()
	ctx, cancel := context.WithCancel(context.Background())
	f := &flight{done: make(chan struct{})}
	m.inflight = f
	m.cancel = cancel
	startGen := m.gen
	mRebuildsStarted.With(reason).Inc()
	m.opts.Logf("payg: %s rebuild started (%d schemas + %d pending)",
		reason, st.sys.NumSchemas(), len(entries))
	m.wg.Add(1)
	go m.runRebuild(ctx, cancel, st, entries, startGen, f)
	return f
}

// runRebuild builds a complete system over the union of the serving
// schemas and the journaled pending schemas, then publishes it with an
// atomic swap — unless the serving generation changed underneath it (a
// feedback apply), in which case the result is discarded and the journal
// kept for the next flight.
func (m *Manager) runRebuild(ctx context.Context, cancel context.CancelFunc, st *managedState, entries []ingest.Entry, startGen int, f *flight) {
	defer m.wg.Done()
	defer close(f.done)
	defer cancel()
	start := time.Now()
	defer func() { mRebuildDuration.Observe(time.Since(start).Seconds()) }()

	union := make([]Schema, 0, st.sys.NumSchemas()+len(entries))
	union = append(union, st.sys.Schemas()...)
	for _, e := range entries {
		union = append(union, e.Schema)
	}
	newSys, err := BuildContext(ctx, union, st.sys.opts)
	if err == nil && m.opts.Transform != nil {
		newSys, err = m.opts.Transform(newSys)
		if err != nil {
			err = fmt.Errorf("payg: transforming rebuilt system: %w", err)
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	m.inflight = nil
	m.cancel = nil
	if err != nil {
		f.err = err
		// A cancellation is the owner shutting the flight down, not a
		// rebuild that went wrong; alerting on it would page on every
		// deploy.
		if !errors.Is(err, context.Canceled) {
			mRebuildsFailed.Inc()
		}
		m.opts.Logf("payg: rebuild failed: %v", err)
		return
	}
	if m.gen != startGen {
		// The serving system changed mid-flight (feedback swap): this
		// result is based on a stale generation. Keep the journal; the
		// next trigger rebuilds over the fresh base.
		m.discarded++
		mRebuildsDiscarded.Inc()
		f.err = fmt.Errorf("payg: rebuild discarded: serving system changed during rebuild")
		m.opts.Logf("payg: rebuild discarded (base generation changed)")
		return
	}
	next := &managedState{sys: newSys, gen: m.gen + 1}
	if st.sources != nil {
		sources := make([]TupleSource, 0, len(union))
		sources = append(sources, st.sources...)
		for _, e := range entries {
			sources = append(sources, m.opts.MakeSource(e.Schema))
		}
		exec, err := newSys.NewExecutorShared(sources, m.opts.Policy, m.pool)
		if err != nil {
			f.err = fmt.Errorf("payg: rebinding sources after rebuild: %w", err)
			m.opts.Logf("payg: %v", f.err)
			return
		}
		next.exec = exec
		next.sources = sources
	}
	m.journal.DrainFirst(len(entries))
	m.drift.Reset()
	m.gen++
	m.rebuilds++
	m.cur.Store(next)
	mRebuildsPublished.Inc()
	mSwapGeneration.Set(float64(m.gen))
	mIngestPending.Set(float64(m.journal.Len()))
	mIngestDrift.Set(m.drift.Ratio())
	m.opts.Logf("payg: rebuild published: %d schemas, %d domains (%d still pending)",
		newSys.NumSchemas(), newSys.NumDomains(), m.journal.Len())
	// Make the swap durable: a checkpoint stamped with the new generation
	// supersedes every WAL record (drained arrivals are in the system,
	// undrained ones in the snapshot's journal), so the log truncates.
	m.checkpointLocked()
}

// ApplyFeedback applies explicit user corrections to the serving system
// and swaps the corrected system in, serialized against rebuild
// publication. Pending (journaled) schemas are unaffected — they join at
// the next rebuild over the corrected base; an in-flight background
// rebuild is invalidated and will be discarded on completion. On a
// durable manager the validated batch is written to the WAL before the
// swap, so crash recovery re-applies it deterministically.
func (m *Manager) ApplyFeedback(fb Feedback) (*FeedbackResult, error) {
	return m.applyFeedback(fb, true)
}

func (m *Manager) applyFeedback(fb Feedback, logWAL bool) (*FeedbackResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("payg: manager closed")
	}
	st := m.cur.Load()
	res, err := st.sys.ApplyFeedback(fb)
	if err != nil {
		return nil, err
	}
	if m.opts.Transform != nil {
		res.System, err = m.opts.Transform(res.System)
		if err != nil {
			return nil, fmt.Errorf("payg: transforming corrected system: %w", err)
		}
	}
	// Validation passed (ApplyFeedback builds the corrected system without
	// mutating the serving one). Persist before publishing: if the WAL
	// rejects the record, nothing has swapped and the caller gets an
	// error; recovery therefore only ever replays feedback that was acked.
	if logWAL {
		if err := m.appendWALLocked(walRecord{Kind: walKindFeedback, Feedback: &fb}); err != nil {
			return nil, err
		}
	}
	next := &managedState{sys: res.System, sources: st.sources, gen: m.gen + 1}
	if st.sources != nil {
		exec, err := res.System.NewExecutorShared(st.sources, m.opts.Policy, m.pool)
		if err != nil {
			return nil, fmt.Errorf("payg: rebinding sources: %w", err)
		}
		next.exec = exec
	}
	m.gen++
	m.cur.Store(next)
	mFeedbackApplied.Inc()
	mSwapGeneration.Set(float64(m.gen))
	return res, nil
}

// BreakerStates reports every data source's circuit-breaker state, keyed
// by source name — closed sources are healthy, open ones are being skipped
// by the query path. Nil when the manager serves without data (no
// executor, hence no breakers).
func (m *Manager) BreakerStates() map[string]BreakerState {
	if m.pool == nil {
		return nil
	}
	return m.pool.States()
}

// ManagerStatus is a point-in-time view of the ingestion pipeline.
type ManagerStatus struct {
	// Schemas and Domains describe the serving system.
	Schemas int
	Domains int
	// Pending is the journal length (accepted, not yet reclustered).
	Pending int
	// Rebuilding is true while a background rebuild is in flight.
	Rebuilding bool
	// DriftRatio is the fresh fraction of the current drift window.
	DriftRatio float64
	// Rebuilds counts published rebuilds; Discarded counts rebuilds
	// thrown away because the serving system changed mid-flight.
	Rebuilds  int
	Discarded int
	// Generation is the serving-state generation, bumped on every atomic
	// swap. Followers compare it against the leader's to measure
	// replication lag.
	Generation int
}

// Status reports the pipeline's current state.
func (m *Manager) Status() ManagerStatus {
	st := m.cur.Load()
	m.mu.Lock()
	defer m.mu.Unlock()
	return ManagerStatus{
		Schemas:    st.sys.NumSchemas(),
		Domains:    st.sys.NumDomains(),
		Pending:    m.journal.Len(),
		Rebuilding: m.inflight != nil,
		DriftRatio: m.drift.Ratio(),
		Rebuilds:   m.rebuilds,
		Discarded:  m.discarded,
		Generation: m.gen,
	}
}

// intervalLoop periodically rebuilds while schemas are pending.
func (m *Manager) intervalLoop(ctx context.Context, every time.Duration) {
	defer m.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			m.mu.Lock()
			if !m.closed && m.inflight == nil && m.journal.Len() > 0 {
				m.startRebuildLocked("interval")
			}
			m.mu.Unlock()
		}
	}
}

// Close stops the interval loop, cancels any in-flight rebuild, waits
// for background goroutines to finish, and closes the write-ahead log.
// The manager keeps serving reads (System/Executor) but rejects further
// Ingest/Recluster/ApplyFeedback.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	if m.stopInterval != nil {
		m.stopInterval()
	}
	if m.cancel != nil {
		m.cancel()
	}
	m.mu.Unlock()
	m.wg.Wait()
	// After wg.Wait no rebuild can checkpoint and closed blocks new
	// arrivals, so the log is quiescent.
	if m.wal != nil {
		if err := m.wal.Close(); err != nil {
			m.opts.Logf("payg: closing WAL: %v", err)
		}
	}
}
